// Tests for the dense LU solver used by the thermal model.
#include "util/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ramp {
namespace {

TEST(MatrixTest, IdentityMul) {
  const Matrix id = Matrix::identity(3);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.mul(x), x);
}

TEST(MatrixTest, MulComputesProduct) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const auto y = m.mul({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, MulDimensionMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.mul({1.0, 2.0}), InvalidArgument);
}

TEST(LuSolverTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolverTest, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const auto x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolverTest, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuSolver{a}, ConvergenceError);
}

TEST(LuSolverTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuSolver{a}, InvalidArgument);
}

TEST(LuSolverTest, ReusableForMultipleRhs) {
  Matrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 4; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 4;
  const LuSolver lu(a);
  for (double scale : {1.0, 2.0, -3.0}) {
    const std::vector<double> b = {scale * 5.0, scale * 6.0, scale * 5.0};
    const auto x = lu.solve(b);
    const auto back = a.mul(x);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
  }
}

TEST(MatrixTest, AssignReinitialisesInPlace) {
  Matrix m(2, 2);
  m(0, 0) = 1; m(0, 1) = 2; m(1, 0) = 3; m(1, 1) = 4;
  m.assign(3, 2, 0.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(m(r, c), 0.5);
  }
  // Shrinking reuses the existing block; values default to zero.
  m.assign(1, 1);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, MulIntoMatchesMulAndRejectsAliasing) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const std::vector<double> x = {1.5, -2.0, 0.25};
  std::vector<double> y;
  m.mul_into(x, y);
  EXPECT_EQ(y, m.mul(x));
  std::vector<double> xy = {1.0, 2.0, 3.0};
  EXPECT_THROW(m.mul_into(xy, xy), InvalidArgument);
}

TEST(LuSolverTest, SolveIntoMatchesSolveBitwise) {
  // The workspace overload must be bit-for-bit the allocating one, including
  // on systems that exercise partial pivoting.
  Xoshiro256 rng(20260806);
  for (const int n : {1, 2, 3, 7, 12, 24}) {
    Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            rng.uniform(-2.0, 2.0);
      }
      // Zero a leading diagonal entry now and then to force row swaps.
      if (n > 1 && r % 3 == 0) {
        a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) = 0.0;
      }
      a(static_cast<std::size_t>(r), (static_cast<std::size_t>(r) + 1) %
                                         static_cast<std::size_t>(n)) += n;
    }
    const LuSolver lu(a);
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-10.0, 10.0);
    const auto x = lu.solve(b);
    std::vector<double> out(3, 99.0);  // wrong size: solve_into must resize
    lu.solve_into(b, out);
    ASSERT_EQ(out.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(out[i], x[i]) << "bit mismatch at n=" << n << " i=" << i;
    }
  }
}

TEST(LuSolverTest, SolveIntoRejectsAliasingAndBadSize) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const LuSolver lu(a);
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(lu.solve_into(b, b), InvalidArgument);
  std::vector<double> out;
  std::vector<double> short_b = {1.0};
  EXPECT_THROW(lu.solve_into(short_b, out), InvalidArgument);
}

// Property sweep: random diagonally dominant systems solve to machine
// precision (residual check), across sizes.
class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, ResidualIsTiny) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n) * 7919);
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const double v = rng.uniform(-1.0, 1.0);
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        row_sum + 1.0;  // strict diagonal dominance => nonsingular
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const auto x = solve_linear(a, b);
  const auto back = a.mul(x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(back[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomTest,
                         ::testing::Values(1, 2, 3, 5, 9, 16, 33));

}  // namespace
}  // namespace ramp
