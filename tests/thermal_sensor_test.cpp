// Tests for the on-die thermal sensor model.
#include "drm/thermal_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::drm {
namespace {

SensorConfig ideal() {
  return {.offset_k = 0.0, .noise_sigma_k = 0.0, .quantum_k = 0.0,
          .time_constant_s = 0.0};
}

TEST(ThermalSensorTest, IdealSensorIsTransparent) {
  ThermalSensor s(ideal(), 1);
  EXPECT_DOUBLE_EQ(s.read(350.0, 1e-6), 350.0);
  EXPECT_DOUBLE_EQ(s.read(362.5, 1e-6), 362.5);
  EXPECT_DOUBLE_EQ(s.last_reading(), 362.5);
}

TEST(ThermalSensorTest, OffsetShiftsReadings) {
  SensorConfig cfg = ideal();
  cfg.offset_k = -3.0;  // optimistic sensor reads cold
  ThermalSensor s(cfg, 2);
  EXPECT_DOUBLE_EQ(s.read(350.0, 1e-6), 347.0);
}

TEST(ThermalSensorTest, QuantizationSnapsToGrid) {
  SensorConfig cfg = ideal();
  cfg.quantum_k = 2.0;
  ThermalSensor s(cfg, 3);
  EXPECT_DOUBLE_EQ(s.read(350.7, 1e-6), 350.0);
  EXPECT_DOUBLE_EQ(s.read(351.2, 1e-6), 352.0);
}

TEST(ThermalSensorTest, NoiseHasConfiguredSpread) {
  SensorConfig cfg = ideal();
  cfg.noise_sigma_k = 0.8;
  ThermalSensor s(cfg, 4);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double r = s.read(355.0, 1e-6) - 355.0;
    sum += r;
    sum2 += r * r;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum2 / n), 0.8, 0.03);
}

TEST(ThermalSensorTest, LowPassLagsSteps) {
  SensorConfig cfg = ideal();
  cfg.time_constant_s = 100e-6;
  ThermalSensor s(cfg, 5);
  s.read(340.0, 1e-6);  // primes at 340
  // Step to 360: after one tau the sensor covers ~63% of the step.
  double r = 0;
  for (int i = 0; i < 100; ++i) r = s.read(360.0, 1e-6);  // 100 µs = 1 tau
  EXPECT_NEAR(r, 340.0 + 20.0 * (1.0 - std::exp(-1.0)), 0.3);
  // After many taus it converges.
  for (int i = 0; i < 1000; ++i) r = s.read(360.0, 1e-6);
  EXPECT_NEAR(r, 360.0, 0.1);
}

TEST(ThermalSensorTest, FirstReadPrimesWithoutLag) {
  SensorConfig cfg = ideal();
  cfg.time_constant_s = 1.0;  // huge lag
  ThermalSensor s(cfg, 6);
  EXPECT_DOUBLE_EQ(s.read(351.0, 1e-6), 351.0);  // no cold-start transient
}

TEST(ThermalSensorTest, DeterministicPerSeed) {
  SensorConfig cfg = ideal();
  cfg.noise_sigma_k = 0.5;
  ThermalSensor a(cfg, 7), b(cfg, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.read(350.0, 1e-6), b.read(350.0, 1e-6));
  }
}

TEST(ThermalSensorTest, RejectsBadInputs) {
  SensorConfig cfg = ideal();
  cfg.noise_sigma_k = -1.0;
  EXPECT_THROW(ThermalSensor(cfg, 1), InvalidArgument);
  ThermalSensor s(ideal(), 1);
  EXPECT_THROW(s.read(350.0, 0.0), InvalidArgument);
  EXPECT_THROW(s.read(-5.0, 1e-6), InvalidArgument);
}

}  // namespace
}  // namespace ramp::drm
