// EvalService behavior tests: answers are bitwise-identical to driving
// pipeline::Evaluator directly (the acceptance bar — caching must never
// change a result, only when it is computed), repeated requests hit the
// in-memory LRU, the 180 nm base run is shared across nodes, and the
// persistent file cache round-trips across service instances.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/sweep.hpp"
#include "scaling/technology.hpp"
#include "serve/eval_service.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::serve {
namespace {

namespace fs = std::filesystem;

pipeline::EvaluationConfig tiny_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 3'000;
  return cfg;
}

EvalRequest eval_req(const std::string& app, const std::string& node) {
  EvalRequest req;
  req.app = app;
  req.node = scaling::parse_tech(node);
  return req;
}

/// The sweep-cache serialization at full precision: equal strings mean
/// bitwise-equal results.
std::string row(const pipeline::AppTechResult& r) {
  std::ostringstream os;
  os.precision(17);
  pipeline::write_result_row(os, r);
  return os.str();
}

TEST(EvalServiceTest, AnswerMatchesDirectEvaluatorBitwise) {
  EvalService service(tiny_config(), {});

  const pipeline::Evaluator direct(tiny_config());
  const auto& gcc = workloads::workload("gcc");
  const auto base = direct.evaluate(gcc, scaling::TechPoint::k180nm);
  const auto scaled =
      direct.evaluate(gcc, scaling::TechPoint::k90nm, base.sink_temp_k);

  EXPECT_EQ(row(service.evaluate(eval_req("gcc", "90"))->result), row(scaled));
  EXPECT_EQ(row(service.evaluate(eval_req("gcc", "180"))->result), row(base));
}

TEST(EvalServiceTest, ExplicitSinkTargetOverridesPinning) {
  EvalService service(tiny_config(), {});
  EvalRequest req = eval_req("twolf", "130");
  req.sink_k = 350.0;

  const pipeline::Evaluator direct(tiny_config());
  const auto expected = direct.evaluate(workloads::workload("twolf"),
                                        scaling::TechPoint::k130nm, 350.0);
  const OutcomePtr outcome = service.evaluate(req);
  EXPECT_EQ(row(outcome->result), row(expected));
  EXPECT_NE(outcome->key.find("pin=0"), std::string::npos);
  // Only one cell was evaluated: no 180 nm base run is needed.
  EXPECT_EQ(service.stats().evaluations, 1u);
}

TEST(EvalServiceTest, RepeatedRequestServedFromCache) {
  EvalService service(tiny_config(), {});
  const OutcomePtr first = service.evaluate(eval_req("gcc", "90"));
  auto s = service.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.evaluations, 2u);  // 180 nm base + 90 nm cell
  EXPECT_EQ(s.cache_size, 2u);   // both cached under their own keys

  const EvalService::Ticket second = service.submit(eval_req("gcc", "90"));
  EXPECT_EQ(second.source, EvalService::Source::kCache);
  EXPECT_EQ(second.future.get().get(), first.get());  // same shared outcome
  s = service.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evaluations, 2u);  // nothing re-ran
}

TEST(EvalServiceTest, BaseRunSharedAcrossNodes) {
  EvalService service(tiny_config(), {});
  service.evaluate(eval_req("gcc", "90"));  // evaluates 180 base + 90
  // The 180 nm cell was cached as a side effect; an explicit request for it
  // is a pure hit, as is any further scaled node's base lookup.
  const auto before = service.stats().evaluations;
  EXPECT_EQ(service.submit(eval_req("gcc", "180")).source,
            EvalService::Source::kCache);
  service.evaluate(eval_req("gcc", "130"));  // reuses the cached base
  EXPECT_EQ(service.stats().evaluations, before + 1);
}

TEST(EvalServiceTest, RequestKeyCanonicalization) {
  const auto base = tiny_config();
  EvalRequest pinned = eval_req("gcc", "180");
  EvalRequest unpinned = pinned;
  unpinned.pin_sink = false;
  // Pinning cannot matter at 180 nm, so both spell the same key.
  EXPECT_EQ(request_key(pinned, base), request_key(unpinned, base));

  EXPECT_NE(request_key(eval_req("gcc", "90"), base),
            request_key(eval_req("gcc", "130"), base));
  EXPECT_NE(request_key(eval_req("gcc", "90"), base),
            request_key(eval_req("twolf", "90"), base));

  EvalRequest longer = eval_req("gcc", "90");
  longer.trace_len = 9'999;
  EXPECT_NE(request_key(longer, base), request_key(eval_req("gcc", "90"), base));
}

TEST(EvalServiceTest, LruEvictionIsCountedAndBounded) {
  EvalService::Options opts;
  opts.cache_capacity = 1;
  EvalService service(tiny_config(), opts);
  service.evaluate(eval_req("gcc", "180"));
  service.evaluate(eval_req("twolf", "180"));
  const auto s = service.stats();
  EXPECT_EQ(s.cache_size, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(EvalServiceTest, InvalidRequestsThrowSynchronously) {
  EvalService service(tiny_config(), {});
  EXPECT_THROW(service.submit(eval_req("no_such_app", "90")),
               std::invalid_argument);
  EvalRequest stats_req;
  stats_req.op = Op::kStats;
  EXPECT_THROW(service.submit(stats_req), InvalidArgument);
  EXPECT_EQ(service.stats().requests, 0u);  // rejected before accounting
}

TEST(EvalServiceTest, RejectsBrokenOptions) {
  EvalService::Options opts;
  opts.max_pending = 0;
  EXPECT_THROW(EvalService(tiny_config(), opts), InvalidArgument);
  EvalService::Options no_jobs;
  no_jobs.jobs = 0;
  EXPECT_THROW(EvalService(tiny_config(), no_jobs), InvalidArgument);
}

class PersistCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "ramp_serve_test_persist").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  EvalService::Options persist_opts() const {
    EvalService::Options opts;
    opts.persist_dir = dir_;
    return opts;
  }

  std::string dir_;
};

TEST_F(PersistCacheTest, RoundtripsAcrossServiceInstances) {
  std::string first_row;
  {
    EvalService service(tiny_config(), persist_opts());
    first_row = row(service.evaluate(eval_req("gcc", "90"))->result);
  }
  // One file per cached key: the 90 nm cell and its 180 nm base.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().extension(), ".rampres");
    std::ifstream f(e.path());
    std::string line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_EQ(line, "# ramp_serve_cache v1");
    ++files;
  }
  EXPECT_EQ(files, 2u);

  EvalService warm(tiny_config(), persist_opts());
  EXPECT_EQ(row(warm.evaluate(eval_req("gcc", "90"))->result), first_row);
  const auto s = warm.stats();
  EXPECT_EQ(s.persist_hits, 1u);
  EXPECT_EQ(s.evaluations, 0u);  // the disk answered; no pipeline run
}

TEST_F(PersistCacheTest, CorruptFilesAreRecomputedNotTrusted) {
  std::string first_row;
  {
    EvalService service(tiny_config(), persist_opts());
    first_row = row(service.evaluate(eval_req("gcc", "90"))->result);
  }
  for (const auto& e : fs::directory_iterator(dir_)) {
    std::ofstream(e.path()) << "not a cache file\n";
  }
  EvalService rebuilt(tiny_config(), persist_opts());
  EXPECT_EQ(row(rebuilt.evaluate(eval_req("gcc", "90"))->result), first_row);
  const auto s = rebuilt.stats();
  EXPECT_EQ(s.persist_hits, 0u);
  EXPECT_EQ(s.evaluations, 2u);
}

// ---- the NDJSON front-end -------------------------------------------------

std::vector<Json> run_serve(const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  EvalService::Options opts;
  opts.jobs = 2;
  EvalService service(tiny_config(), opts);
  EXPECT_EQ(serve_loop(in, out, service), 0);

  std::vector<Json> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) responses.push_back(Json::parse(line));
  return responses;
}

TEST(ServeLoopTest, EvalStatsErrorsAndShutdown) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":\"two\"}\n"
      "{\"op\":\"stats\"}\n"
      "not json\n"
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"bogus\":1}\n"
      "{\"op\":\"shutdown\",\"id\":9}\n"
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\"}\n");  // after shutdown
  ASSERT_EQ(responses.size(), 6u);  // the post-shutdown line is never read

  const Json& first = responses[0];
  EXPECT_TRUE(first.find("ok")->as_bool());
  EXPECT_EQ(first.find("op")->as_string(), "eval");
  EXPECT_DOUBLE_EQ(first.find("id")->as_number(), 1.0);
  EXPECT_FALSE(first.find("cached")->as_bool());
  ASSERT_NE(first.find("result"), nullptr);

  // Same key again: answered without re-evaluating — either from the LRU or
  // by coalescing onto the still-running first request.
  const Json& second = responses[1];
  EXPECT_EQ(second.find("id")->as_string(), "two");
  EXPECT_TRUE(second.find("cached")->as_bool() ||
              second.find("coalesced")->as_bool());
  // Identical payload: the service guarantees equal keys give equal results.
  EXPECT_EQ(second.find("result")->dump(), first.find("result")->dump());

  const Json* stats = responses[2].find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->find("requests")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(stats->find("misses")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(stats->find("evaluations")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(stats->find("queue_depth")->as_number(), 0.0);

  EXPECT_FALSE(responses[3].find("ok")->as_bool());  // parse error
  EXPECT_FALSE(responses[4].find("ok")->as_bool());  // unknown field
  EXPECT_NE(responses[4].find("error")->as_string().find("bogus"),
            std::string::npos);

  EXPECT_TRUE(responses[5].find("ok")->as_bool());
  EXPECT_EQ(responses[5].find("op")->as_string(), "shutdown");
  EXPECT_DOUBLE_EQ(responses[5].find("id")->as_number(), 9.0);
}

TEST(ServeLoopTest, EofWithoutShutdownDrainsCleanly) {
  const auto responses =
      run_serve("{\"op\":\"eval\",\"app\":\"gzip\",\"node\":\"180\"}\n");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].find("ok")->as_bool());
}

TEST(ServeLoopTest, ResponseResultMatchesDirectEvaluator) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 2u);
  const Json* result = responses[0].find("result");
  ASSERT_NE(result, nullptr);

  const pipeline::Evaluator direct(tiny_config());
  const auto& gcc = workloads::workload("gcc");
  const auto base = direct.evaluate(gcc, scaling::TechPoint::k180nm);
  const auto scaled =
      direct.evaluate(gcc, scaling::TechPoint::k90nm, base.sink_temp_k);
  // %.17g serialization round-trips doubles exactly, so these are
  // bit-for-bit comparisons of the wire payload against the direct run.
  EXPECT_EQ(result->find("ipc")->as_number(), scaled.ipc);
  EXPECT_EQ(result->find("total_w")->as_number(), scaled.avg_total_power_w);
  EXPECT_EQ(result->find("max_temp_k")->as_number(),
            scaled.max_structure_temp_k);
  EXPECT_EQ(result->find("sink_temp_k")->as_number(), scaled.sink_temp_k);
  EXPECT_EQ(result->find("raw_fit")->find("total")->as_number(),
            scaled.raw_fits.total());
}

// ---- observability --------------------------------------------------------

// Satellite regression: moving the stats counters onto the metrics registry
// must not change the NDJSON wire format. A fresh service's stats response is
// fully deterministic, so the whole line is frozen byte-for-byte — field
// order, zero formatting, everything.
TEST(ServeLoopTest, StatsWireFormatFrozen) {
  std::istringstream in("{\"op\":\"stats\"}\n");
  std::ostringstream out;
  EvalService service(tiny_config(), {});
  EXPECT_EQ(serve_loop(in, out, service), 0);
  EXPECT_EQ(out.str(),
            "{\"ok\":true,\"op\":\"stats\",\"stats\":{"
            "\"requests\":0,\"hits\":0,\"coalesced\":0,\"misses\":0,"
            "\"persist_hits\":0,\"evaluations\":0,\"failures\":0,"
            "\"evictions\":0,\"queue_depth\":0,\"cache_size\":0,"
            "\"p50_latency_ms\":0,\"p99_latency_ms\":0}}\n");
}

TEST(ServeLoopTest, MetricsOpReturnsParseablePrometheusText) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"metrics\",\"id\":\"m\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 3u);

  const Json& metrics = responses[1];
  EXPECT_TRUE(metrics.find("ok")->as_bool());
  EXPECT_EQ(metrics.find("op")->as_string(), "metrics");
  EXPECT_EQ(metrics.find("id")->as_string(), "m");

  // The payload is standard Prometheus text exposition; the service counters
  // in it agree with what the stats op would have reported.
  const auto samples =
      obs::parse_prometheus_text(metrics.find("prometheus")->as_string());
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_requests_total"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_misses_total"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_evaluations_total"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_latency_seconds_count"), 1.0);
  EXPECT_GE(samples.at("ramp_serve_latency_seconds_sum"), 0.0);
}

// The metrics_reset op zeroes the service counters without touching the
// frozen stats wire format: a reset service answers exactly like a fresh one.
TEST(ServeLoopTest, MetricsResetZeroesStats) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"metrics_reset\",\"id\":\"r\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 4u);

  const Json& reset = responses[1];
  EXPECT_TRUE(reset.find("ok")->as_bool());
  EXPECT_EQ(reset.find("op")->as_string(), "metrics_reset");
  EXPECT_EQ(reset.find("id")->as_string(), "r");

  // Post-reset counters read exactly like a fresh service's in the frozen
  // wire format; only cache_size differs, because gauges report state, not
  // history — the LRU still holds the base + node outcomes.
  EXPECT_EQ(responses[2].dump(),
            "{\"ok\":true,\"op\":\"stats\",\"stats\":{"
            "\"requests\":0,\"hits\":0,\"coalesced\":0,\"misses\":0,"
            "\"persist_hits\":0,\"evaluations\":0,\"failures\":0,"
            "\"evictions\":0,\"queue_depth\":0,\"cache_size\":2,"
            "\"p50_latency_ms\":0,\"p99_latency_ms\":0}}");
}

TEST(EvalServiceTest, ResetStatsKeepsCacheGauges) {
  EvalService service(tiny_config(), {});
  service.evaluate(eval_req("gcc", "180"));
  service.drain();
  service.reset_stats();
  const auto s = service.stats();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.evaluations, 0u);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 0.0);
  // The cache still holds the entry — gauges reflect state, not history —
  // and the service keeps serving from it.
  EXPECT_EQ(s.cache_size, 1u);
  service.evaluate(eval_req("gcc", "180"));
  EXPECT_EQ(service.stats().hits, 1u);
}

// The timeline op returns the flight-recorder payload for one cell and its
// result agrees with a plain eval of the same request.
TEST(ServeLoopTest, TimelineOpReturnsPointsAndMatchingResult) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"timeline\",\"app\":\"gcc\",\"node\":\"90\",\"points\":8,"
      "\"id\":\"t\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 3u);

  const Json& timeline = responses[1];
  ASSERT_TRUE(timeline.find("ok")->as_bool());
  EXPECT_EQ(timeline.find("op")->as_string(), "timeline");
  EXPECT_EQ(timeline.find("id")->as_string(), "t");
  EXPECT_EQ(timeline.find("cell")->as_string(), "gcc@90");
  EXPECT_GE(timeline.find("intervals")->as_number(), 1.0);

  const auto& points = timeline.find("points")->elements();
  ASSERT_GE(points.size(), 1u);
  ASSERT_LE(points.size(), 9u);  // requested budget + final-point patch
  const Json& last = points.back();
  ASSERT_NE(last.find("fit_avg"), nullptr);
  ASSERT_NE(last.find("temp_k"), nullptr);

  // The timeline run bypasses the cache but must agree with the cached eval
  // answer bit-for-bit — recording never changes results.
  EXPECT_EQ(timeline.find("result")->dump(),
            responses[0].find("result")->dump());
  // The final recorded fit_avg reproduces the result's raw FIT exactly.
  const Json* fit = responses[0].find("result")->find("raw_fit");
  const auto& avg = last.find("fit_avg")->elements();
  ASSERT_EQ(avg.size(), 4u);
  EXPECT_EQ(avg[0].as_number(), fit->find("em")->as_number());
  EXPECT_EQ(avg[3].as_number(), fit->find("tc")->as_number());

  ASSERT_NE(timeline.find("incidents"), nullptr);
}

TEST(ServeLoopTest, TimelineOpValidatesLikeEval) {
  const auto responses = run_serve(
      "{\"op\":\"timeline\"}\n"
      "{\"op\":\"timeline\",\"app\":\"gcc\",\"node\":\"90\",\"points\":1}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].find("ok")->as_bool());  // missing app
  EXPECT_FALSE(responses[1].find("ok")->as_bool());  // points < 2
}

// EvalService books its stats on a private always-on registry, so stats stay
// contractual even when process-wide metrics are disabled via RAMP_METRICS.
TEST(EvalServiceTest, StatsSurviveDisabledGlobalRegistry) {
  EvalService service(tiny_config(), {});
  service.evaluate(eval_req("gcc", "180"));
  const auto s = service.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_GT(s.p50_latency_ms, 0.0);
  // And the same numbers are visible through the registry snapshot.
  const obs::MetricsSnapshot snap = service.metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "ramp_serve_requests_total") {
      EXPECT_EQ(value, 1u);
    }
    if (name == "ramp_serve_evaluations_total") {
      EXPECT_EQ(value, 1u);
    }
  }
}

// ---- per-request tracing --------------------------------------------------

TEST(ParseRequestTest, TraceFieldsValidateAdversarially) {
  // Well-formed trace fields parse and land on the request.
  const EvalRequest ok = parse_request(
      R"({"op":"eval","app":"gcc","node":"90","trace":true,"trace_id":"r1"})");
  EXPECT_TRUE(ok.trace);
  EXPECT_EQ(ok.trace_id, "r1");

  // Wrong types and malformed ids throw instead of being coerced.
  EXPECT_THROW(
      parse_request(R"({"op":"eval","app":"gcc","trace":"yes"})"),
      std::exception);
  EXPECT_THROW(parse_request(R"({"op":"eval","app":"gcc","trace_id":123})"),
               std::exception);
  EXPECT_THROW(parse_request(R"({"op":"eval","app":"gcc","trace_id":""})"),
               std::exception);
  EXPECT_THROW(parse_request(R"({"op":"eval","app":"gcc","trace_id":")" +
                             std::string(129, 'x') + R"("})"),
               std::exception);
  EXPECT_THROW(
      parse_request(
          "{\"op\":\"eval\",\"app\":\"gcc\",\"trace_id\":\"a\\u0007b\"}"),
      std::exception);

  // Trace fields are an eval/timeline affair; control ops reject them.
  EXPECT_THROW(parse_request(R"({"op":"stats","trace":true})"),
               std::exception);
  EXPECT_THROW(parse_request(R"({"op":"metrics","trace_id":"x"})"),
               std::exception);
}

TEST(ParseRequestTest, MetricsFormatValidates) {
  EXPECT_EQ(parse_request(R"({"op":"metrics","format":"json"})")
                .metrics_format,
            "json");
  EXPECT_THROW(parse_request(R"({"op":"metrics","format":"xml"})"),
               std::exception);
  EXPECT_THROW(parse_request(R"({"op":"stats","format":"json"})"),
               std::exception);
}

// Tracing is pure observation: it must never change what is computed or
// cached, so the cache key ignores trace/trace_id by construction.
TEST(EvalServiceTest, RequestKeyIgnoresTraceFields) {
  const pipeline::EvaluationConfig base = tiny_config();
  const EvalRequest plain =
      parse_request(R"({"op":"eval","app":"gcc","node":"90"})");
  const EvalRequest traced = parse_request(
      R"({"op":"eval","app":"gcc","node":"90","trace":true,"trace_id":"t"})");
  EXPECT_EQ(request_key(plain, base), request_key(traced, base));
}

TEST(ServeLoopTest, HealthOpReportsStdioDefaults) {
  const auto responses = run_serve(
      "{\"op\":\"health\",\"id\":\"h\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 2u);
  const Json& h = responses[0];
  EXPECT_TRUE(h.find("ok")->as_bool());
  EXPECT_EQ(h.find("op")->as_string(), "health");
  EXPECT_EQ(h.find("id")->as_string(), "h");
  EXPECT_EQ(h.find("mode")->as_string(), "stdio");
  EXPECT_GE(h.find("uptime_s")->as_number(), 0.0);
  EXPECT_EQ(h.find("accepted_connections")->as_number(), 1.0);
  EXPECT_EQ(h.find("active_connections")->as_number(), 1.0);
  EXPECT_FALSE(h.find("draining")->as_bool());
  EXPECT_EQ(h.find("shards")->as_number(), 1.0);
}

TEST(ServeLoopTest, TraceFlagAttachesBreakdownOverStdio) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":2,"
      "\"trace\":true,\"trace_id\":\"abc\"}\n"
      "{\"op\":\"trace_dump\"}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].find("trace"), nullptr);

  const Json* t = responses[1].find("trace");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->find("trace_id")->as_string(), "abc");
  EXPECT_EQ(t->find("label")->as_string(), "gcc@90");
  EXPECT_GT(t->find("total_ns")->as_number(), 0.0);
  const Json* phases = t->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("serialize"), nullptr);

  // The stdio ring only holds requests that asked to be traced.
  const Json& dump = responses[2];
  EXPECT_TRUE(dump.find("ok")->as_bool());
  EXPECT_EQ(dump.find("op")->as_string(), "trace_dump");
  EXPECT_EQ(dump.find("count")->as_number(), 1.0);
  EXPECT_EQ(dump.find("total_traced")->as_number(), 1.0);
  EXPECT_NE(dump.find("perfetto")->as_string().find("\"traceEvents\""),
            std::string::npos);
}

// The traced response is the untraced response plus the trace object — the
// breakdown must never perturb the payload bytes.
TEST(ServeLoopTest, TraceObjectIsPureAddition) {
  const auto responses = run_serve(
      "{\"op\":\"eval\",\"app\":\"gzip\",\"node\":\"130\"}\n"
      "{\"op\":\"eval\",\"app\":\"gzip\",\"node\":\"130\",\"trace\":true}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(responses.size(), 3u);
  // The second request legitimately differs in provenance (cache hit or
  // coalesced onto the first); everything else must match bytewise.
  const auto neutral = [](const Json& r) {
    Json out = Json::object();
    for (const auto& [key, value] : r.items()) {
      if (key == "trace") continue;
      out.set(key, (key == "cached" || key == "coalesced") ? Json(false)
                                                           : value);
    }
    return out;
  };
  const Json stripped = neutral(responses[1]);
  const Json reference = neutral(responses[0]);
  EXPECT_EQ(stripped.dump(), reference.dump());
  ASSERT_NE(responses[1].find("trace"), nullptr);
  // A server-generated trace_id was assigned (no client-supplied one).
  EXPECT_FALSE(
      responses[1].find("trace")->find("trace_id")->as_string().empty());
}

}  // namespace
}  // namespace ramp::serve
