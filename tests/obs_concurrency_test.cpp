// Multi-threaded hammer tests for the metrics registry and profiler: many
// writer threads increment counters, move gauges, observe histograms and
// record spans while a reader thread snapshots concurrently. Run under
// `ctest -L concurrency`, ideally from a -DRAMP_SANITIZE=thread build, where
// TSan checks the lock-free hot path; the final-total assertions then verify
// that relaxed atomics still lose no updates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ramp::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 10'000;

TEST(ObsConcurrencyTest, CountersLoseNoIncrementsUnderContention) {
  MetricsRegistry reg;
  Counter shared = reg.counter("ramp_hammer_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, shared] {
      // Half the threads use the pre-resolved handle, half re-resolve —
      // both paths must hit the same cell.
      Counter mine = reg.counter("ramp_hammer_total");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        mine.inc(2);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared.value(),
            static_cast<std::uint64_t>(kThreads) * kIters * 3);
}

TEST(ObsConcurrencyTest, HistogramBucketsSumAndCountStayConsistent) {
  MetricsRegistry reg;
  const std::vector<double> bounds = {0.25, 0.5, 0.75};
  Histogram h = reg.histogram("ramp_hammer_seconds", bounds);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      Histogram local = h;
      // Deterministic per-thread values covering every bucket incl. +Inf.
      const double values[4] = {0.1, 0.3, 0.6, 1.0 + t};
      for (int i = 0; i < kIters; ++i) local.observe(values[i % 4]);
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(hs.count, total);
  ASSERT_EQ(hs.counts.size(), 4u);
  // kIters % 4 == 0, so each of the four values lands exactly total/4 times.
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(hs.counts[b], total / 4) << "bucket " << b;
  }
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (kIters / 4.0) * (0.1 + 0.3 + 0.6 + (1.0 + t));
  }
  EXPECT_NEAR(hs.sum, expected_sum, 1e-6 * expected_sum);
}

TEST(ObsConcurrencyTest, SnapshotsRaceSafelyWithWriters) {
  MetricsRegistry reg;
  Counter c = reg.counter("ramp_hammer_total");
  Gauge g = reg.gauge("ramp_hammer_depth");
  Histogram h = reg.histogram("ramp_hammer_seconds", {1.0});
  std::atomic<bool> stop{false};

  std::thread reader([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.snapshot();
      // Mid-flight snapshots can lag writers, but never see more than the
      // final totals (counters are monotonic; this mostly gives TSan a
      // concurrent read of every cell).
      EXPECT_EQ(snap.counters.size(), 1u);
      EXPECT_LE(snap.counters[0].second,
                static_cast<std::uint64_t>(kThreads) * kIters);
      for (const auto& hist : snap.histograms) {
        for (const std::uint64_t n : hist.counts) {
          EXPECT_LE(n, static_cast<std::uint64_t>(kThreads) * kIters);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([c, g, h, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(t % 2 == 0 ? 1.0 : -1.0);
        h.observe(0.5);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(c.value(), total);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);  // equal +1/-1 writers cancel exactly
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, total);
  EXPECT_EQ(snap.histograms[0].counts[0], total);
}

TEST(ObsConcurrencyTest, ProfilerAggregatesAcrossThreadsWhileSnapshotting) {
  Profiler prof(/*enabled=*/true);
  std::atomic<bool> stop{false};
  std::thread reader([&prof, &stop] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const StageProfile profile = prof.snapshot();
      const std::uint64_t spans =
          profile.totals[static_cast<std::size_t>(Stage::kSim)].spans;
      EXPECT_GE(spans, last);  // per-thread totals only ever grow
      last = spans;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&prof, t] {
      const std::string cell = "app" + std::to_string(t % 2) + "@90";
      for (int i = 0; i < kIters; ++i) {
        prof.record(Stage::kSim, 1e-4);
        if (i % 16 == 0) prof.record_cell(Stage::kFit, cell, 1e-4);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const StageProfile profile = prof.snapshot();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(profile.totals[static_cast<std::size_t>(Stage::kSim)].spans, total);
  EXPECT_NEAR(profile.seconds(Stage::kSim), total * 1e-4, total * 1e-9);
  ASSERT_EQ(profile.cells.size(), 2u);
  std::uint64_t cell_spans = 0;
  for (const auto& [name, stages] : profile.cells) {
    cell_spans += stages[static_cast<std::size_t>(Stage::kFit)].spans;
  }
  EXPECT_EQ(cell_spans, static_cast<std::uint64_t>(kThreads) * (kIters / 16));
}

}  // namespace
}  // namespace ramp::obs
