// Tests for the metrics registry: handle semantics (null no-ops when
// disabled), registration contracts (name validation, kind/bounds clashes),
// histogram bucketing cross-checked against util::Histogram on random
// samples, and the Prometheus-style quantile estimate against an exact
// sorted percentile.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ramp::obs {
namespace {

TEST(MetricsRegistryTest, CounterCountsAndReResolvesToSameCell) {
  MetricsRegistry reg;
  Counter a = reg.counter("ramp_test_total");
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);
  // Re-resolving the name hands back the same cell.
  EXPECT_EQ(reg.counter("ramp_test_total").value(), 42u);
}

TEST(MetricsRegistryTest, GaugeSetsAndAdds) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("ramp_test_depth");
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramObservesWithLeSemantics) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("ramp_test_seconds", {1.0, 2.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (le bound is inclusive)
  h.observe(1.5);   // <= 2.0
  h.observe(99.0);  // +Inf
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.name, "ramp_test_seconds");
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5 + 1.0 + 1.5 + 99.0);
}

TEST(MetricsRegistryTest, DisabledRegistryHandsOutNullNoOpHandles) {
  MetricsRegistry reg(/*enabled=*/false);
  Counter c = reg.counter("ramp_test_total");
  Gauge g = reg.gauge("ramp_test_depth");
  Histogram h = reg.histogram("ramp_test_seconds", {1.0});
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  c.inc();
  g.set(5.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreNull) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.add(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, RejectsInvalidNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), InvalidArgument);
  EXPECT_THROW(reg.counter("9starts_with_digit"), InvalidArgument);
  EXPECT_THROW(reg.counter("has space"), InvalidArgument);
  EXPECT_THROW(reg.counter("has-dash"), InvalidArgument);
  EXPECT_NO_THROW(reg.counter("ok_name:with_colon_42"));
}

TEST(MetricsRegistryTest, KindClashThrows) {
  MetricsRegistry reg;
  reg.counter("ramp_test_metric");
  EXPECT_THROW(reg.gauge("ramp_test_metric"), InvalidArgument);
  EXPECT_THROW(reg.histogram("ramp_test_metric", {1.0}), InvalidArgument);
}

TEST(MetricsRegistryTest, HistogramBoundsAreValidated) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("ramp_test_h", {}), InvalidArgument);
  EXPECT_THROW(reg.histogram("ramp_test_h", {1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(reg.histogram("ramp_test_h", {2.0, 1.0}), InvalidArgument);
  reg.histogram("ramp_test_h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("ramp_test_h", {1.0, 3.0}), InvalidArgument);
  EXPECT_NO_THROW(reg.histogram("ramp_test_h", {1.0, 2.0}));
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameAndResetZeroes) {
  MetricsRegistry reg;
  reg.counter("ramp_b_total").inc(2);
  reg.counter("ramp_a_total").inc(1);
  reg.gauge("ramp_z_depth").set(9.0);
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "ramp_a_total");
  EXPECT_EQ(snap.counters[1].first, "ramp_b_total");

  reg.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.counters[1].second, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
}

TEST(MetricsSnapshotTest, MergeFromAppendsOtherRegistry) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("ramp_a_total").inc(1);
  b.counter("ramp_b_total").inc(2);
  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "ramp_a_total");
  EXPECT_EQ(merged.counters[1].first, "ramp_b_total");
}

// The obs histogram with bounds {0.05, 0.10, ..., 0.95} partitions [0, 1)
// into the same 20 cells as util::Histogram(0.0, 1.0, 20), up to the edge
// convention (le-inclusive vs right-open) which random doubles never hit.
TEST(MetricsHistogramTest, BucketCountsMatchUtilStatsHistogram) {
  std::vector<double> bounds;
  for (int i = 1; i < 20; ++i) bounds.push_back(i * 0.05);

  MetricsRegistry reg;
  Histogram obs_hist = reg.histogram("ramp_test_xcheck", bounds);
  ramp::Histogram ref(0.0, 1.0, 20);

  Xoshiro256 rng(2024);
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.uniform();
    obs_hist.observe(x);
    ref.add(x);
  }

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  ASSERT_EQ(hs.counts.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hs.counts[i], ref.bin_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(hs.count, ref.total());
  EXPECT_EQ(hs.counts[19], hs.count -
                               [&] {
                                 std::uint64_t below = 0;
                                 for (int i = 0; i < 19; ++i) below += hs.counts[i];
                                 return below;
                               }());
}

// histogram_quantile interpolates inside one bucket, so it can never be
// farther from the exact sorted percentile than that bucket's width.
TEST(MetricsHistogramTest, QuantileWithinBucketWidthOfExactPercentile) {
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(i * 0.05);
  const double width = 0.05;

  MetricsRegistry reg;
  Histogram h = reg.histogram("ramp_test_quantile", bounds);
  Xoshiro256 rng(7);
  std::vector<double> samples;
  samples.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    // Skewed distribution: squaring biases toward small values, so several
    // buckets carry most of the mass — a harder case than uniform.
    const double x = rng.uniform() * rng.uniform();
    samples.push_back(x);
    h.observe(x);
  }
  std::sort(samples.begin(), samples.end());

  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot& hs = snap.histograms[0];
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double est = histogram_quantile(hs, q);
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    EXPECT_NEAR(est, exact, width) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, QuantileEdgeCases) {
  HistogramSnapshot empty;
  empty.bounds = {1.0, 2.0};
  empty.counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);

  // All mass in the +Inf bucket clamps to the highest finite bound.
  HistogramSnapshot inf;
  inf.bounds = {1.0, 2.0};
  inf.counts = {0, 0, 5};
  inf.count = 5;
  EXPECT_DOUBLE_EQ(histogram_quantile(inf, 0.5), 2.0);

  HistogramSnapshot one;
  one.bounds = {1.0, 2.0};
  one.counts = {4, 0, 0};
  one.count = 4;
  EXPECT_THROW(histogram_quantile(one, 1.5), InvalidArgument);
  EXPECT_LE(histogram_quantile(one, 0.5), 1.0);
}

}  // namespace
}  // namespace ramp::obs
