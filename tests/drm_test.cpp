// Tests for the dynamic reliability management controller.
#include "drm/drm_controller.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ramp::drm {
namespace {

std::vector<OperatingPoint> ladder3() {
  return dvfs_ladder(scaling::node(scaling::TechPoint::k65nm_1V0), 3, 0.05);
}

TEST(DvfsLadderTest, DescendsFromNominal) {
  const auto ladder = ladder3();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_DOUBLE_EQ(ladder[0].vdd, 1.0);
  EXPECT_DOUBLE_EQ(ladder[0].frequency_hz, 2.0e9);
  EXPECT_DOUBLE_EQ(ladder[0].relative_performance, 1.0);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i].vdd, ladder[i - 1].vdd);
    EXPECT_LT(ladder[i].frequency_hz, ladder[i - 1].frequency_hz);
    EXPECT_LT(ladder[i].relative_performance, 1.0);
  }
}

TEST(DvfsLadderTest, RejectsImplausibleDepth) {
  // Stepping far below Vmin must throw rather than produce nonsense.
  EXPECT_THROW(
      dvfs_ladder(scaling::node(scaling::TechPoint::k65nm_0V9), 12, 0.05),
      InvalidArgument);
  EXPECT_THROW(dvfs_ladder(scaling::base_node(), 0), InvalidArgument);
}

TEST(DrmControllerTest, StaysAtNominalWhenUnderBudget) {
  DrmController ctl({.fit_budget = 4000.0}, ladder3());
  for (int i = 0; i < 100; ++i) {
    const auto d = ctl.update(3000.0, 1e-6);
    EXPECT_EQ(d.point_index, 0);
    EXPECT_FALSE(d.changed);
  }
  EXPECT_EQ(ctl.switches(), 0u);
  EXPECT_DOUBLE_EQ(ctl.average_performance(), 1.0);
}

TEST(DrmControllerTest, ThrottlesWhenOverBudget) {
  DrmController ctl({.fit_budget = 4000.0, .headroom = 0.05}, ladder3());
  bool throttled = false;
  for (int i = 0; i < 50 && !throttled; ++i) {
    throttled = ctl.update(10000.0, 1e-6).changed;
  }
  EXPECT_TRUE(throttled);
  EXPECT_EQ(ctl.current_index(), 1);
  EXPECT_LT(ctl.current().vdd, 1.0);
}

TEST(DrmControllerTest, KeepsSteppingDownUnderSustainedOverload) {
  DrmController ctl({.fit_budget = 4000.0}, ladder3());
  for (int i = 0; i < 500; ++i) ctl.update(50000.0, 1e-6);
  EXPECT_EQ(ctl.current_index(), 2);  // pinned at the lowest rung
}

TEST(DrmControllerTest, RecoversAfterLoadDrops) {
  DrmConfig cfg{.fit_budget = 4000.0, .headroom = 0.05, .dwell_seconds = 5e-6};
  DrmController ctl(cfg, ladder3());
  // Overload long enough to throttle...
  for (int i = 0; i < 50; ++i) ctl.update(20000.0, 1e-6);
  EXPECT_GT(ctl.current_index(), 0);
  // ...then a long cool phase pulls the running average back under budget.
  for (int i = 0; i < 2000; ++i) ctl.update(500.0, 1e-6);
  EXPECT_EQ(ctl.current_index(), 0);
}

TEST(DrmControllerTest, DwellPreventsOscillation) {
  // With a huge dwell, the controller may step down but never back up.
  DrmConfig cfg{.fit_budget = 4000.0, .headroom = 0.05, .dwell_seconds = 1.0};
  DrmController ctl(cfg, ladder3());
  for (int i = 0; i < 50; ++i) ctl.update(20000.0, 1e-6);
  const auto idx = ctl.current_index();
  EXPECT_GT(idx, 0);
  for (int i = 0; i < 5000; ++i) ctl.update(100.0, 1e-6);
  EXPECT_EQ(ctl.current_index(), idx);  // up-step blocked by dwell
}

TEST(DrmControllerTest, AverageFitIsTimeWeighted) {
  DrmController ctl({.fit_budget = 4000.0}, ladder3());
  ctl.update(1000.0, 3e-6);
  ctl.update(5000.0, 1e-6);
  EXPECT_NEAR(ctl.average_fit(), (3000.0 + 5000.0) / 4.0, 1e-9);
}

TEST(DrmControllerTest, HysteresisBandHolds) {
  // Averages inside (budget*(1-h), budget*(1+h)) never cause switches.
  DrmController ctl({.fit_budget = 4000.0, .headroom = 0.10}, ladder3());
  for (int i = 0; i < 1000; ++i) {
    const auto d = ctl.update(i % 2 ? 4300.0 : 3700.0, 1e-6);
    EXPECT_FALSE(d.changed);
  }
  EXPECT_EQ(ctl.switches(), 0u);
}

TEST(DrmControllerTest, RejectsBadInputs) {
  EXPECT_THROW(DrmController({}, {}), InvalidArgument);
  EXPECT_THROW(DrmController({.fit_budget = -1.0}, ladder3()), InvalidArgument);
  EXPECT_THROW(DrmController({.headroom = 1.5}, ladder3()), InvalidArgument);
  DrmController ctl({}, ladder3());
  EXPECT_THROW(ctl.update(-5.0, 1e-6), InvalidArgument);
  EXPECT_THROW(ctl.update(100.0, 0.0), InvalidArgument);
}

TEST(DrmControllerTest, LadderOrderEnforced) {
  auto ladder = ladder3();
  std::swap(ladder[0], ladder[2]);  // slowest first: invalid
  EXPECT_THROW(DrmController({}, ladder), InvalidArgument);
}

}  // namespace
}  // namespace ramp::drm
