// Tests for SOFR combination and running FIT averages.
#include "core/fit_tracker.hpp"

#include <gtest/gtest.h>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {
namespace {

using sim::kNumStructures;

std::array<double, kNumStructures> uniform(double v) {
  std::array<double, kNumStructures> a{};
  a.fill(v);
  return a;
}

TEST(FitSummaryTest, TotalIsSumOverStructuresAndMechanisms) {
  FitSummary s;
  s.by_structure[0][0] = 10.0;
  s.by_structure[3][2] = 20.0;
  s.tc_fit = 5.0;
  EXPECT_DOUBLE_EQ(s.total(), 35.0);
  const auto by_mech = s.by_mechanism();
  EXPECT_DOUBLE_EQ(by_mech[0], 10.0);
  EXPECT_DOUBLE_EQ(by_mech[2], 20.0);
  EXPECT_DOUBLE_EQ(by_mech[3], 5.0);
}

TEST(FitSummaryTest, MttfReciprocalOfFit) {
  FitSummary s;
  s.tc_fit = 4000.0;
  // 4000 FIT => 1e9/4000 hours ≈ 28.5 years.
  EXPECT_NEAR(s.mttf_years(), 1e9 / 4000.0 / kHoursPerYear, 1e-9);
}

TEST(FitSummaryTest, MttfOfZeroFitThrows) {
  FitSummary s;
  EXPECT_THROW(s.mttf_years(), InvalidArgument);
}

TEST(FitTrackerTest, ConstantConditionsMatchSteadyState) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  for (int i = 0; i < 10; ++i) {
    tracker.add_interval(uniform(355.0), uniform(0.5), 1.3, 1e-6);
  }
  const FitSummary tracked = tracker.summary();
  const FitSummary steady = steady_state_summary(model, 355.0, 0.5, 1.3);
  EXPECT_NEAR(tracked.total(), steady.total(), steady.total() * 1e-9);
}

TEST(FitTrackerTest, TimeWeightedAveraging) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  // 1s hot + 3s cold: average must lie between, weighted 1:3.
  tracker.add_interval(uniform(375.0), uniform(0.5), 1.3, 1.0);
  tracker.add_interval(uniform(345.0), uniform(0.5), 1.3, 3.0);
  const double hot = steady_state_summary(model, 375.0, 0.5, 1.3).total();
  const double cold = steady_state_summary(model, 345.0, 0.5, 1.3).total();
  const double expected = (hot * 1.0 + cold * 3.0) / 4.0;
  EXPECT_NEAR(tracker.summary().total(), expected, expected * 1e-9);
}

TEST(FitTrackerTest, TracksMaxima) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  auto temps = uniform(350.0);
  temps[2] = 368.0;
  auto act = uniform(0.3);
  act[5] = 0.9;
  tracker.add_interval(temps, act, 1.3, 1e-6);
  tracker.add_interval(uniform(355.0), uniform(0.4), 1.3, 1e-6);
  EXPECT_DOUBLE_EQ(tracker.max_temperature(), 368.0);
  EXPECT_DOUBLE_EQ(tracker.max_activity(), 0.9);
  EXPECT_NEAR(tracker.total_time(), 2e-6, 1e-15);
}

TEST(FitTrackerTest, AvgDieTemperatureIsAreaWeighted) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  auto temps = uniform(350.0);
  // Raise only the LSU (28% of area): die average = 350 + 0.28 * 10.
  temps[sim::idx(sim::StructureId::kLsu)] = 360.0;
  tracker.add_interval(temps, uniform(0.5), 1.3, 1.0);
  EXPECT_NEAR(tracker.avg_die_temperature(), 352.8, 1e-9);
}

TEST(FitTrackerTest, ZeroDurationIgnored) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  tracker.add_interval(uniform(390.0), uniform(1.0), 1.3, 0.0);
  EXPECT_DOUBLE_EQ(tracker.summary().total(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.total_time(), 0.0);
}

TEST(FitTrackerTest, EmptyTrackerYieldsZeroSummary) {
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  EXPECT_DOUBLE_EQ(tracker.summary().total(), 0.0);
}

TEST(SteadyStateSummaryTest, WorstCaseDominatesAnyMilderPoint) {
  // SOFR property: the steady-state FIT at the max temperature and max
  // activity bounds the FIT of any run whose conditions stay below them.
  const RampModel model(scaling::base_node());
  FitTracker tracker(model);
  tracker.add_interval(uniform(350.0), uniform(0.4), 1.3, 1.0);
  tracker.add_interval(uniform(362.0), uniform(0.7), 1.3, 1.0);
  const FitSummary worst = steady_state_summary(model, 362.0, 0.7, 1.3);
  EXPECT_GE(worst.total(), tracker.summary().total());
}

TEST(SteadyStateSummaryTest, HigherVoltageRaisesTotalAtFixedTemp) {
  const RampModel model(scaling::node(scaling::TechPoint::k65nm_1V0));
  const double lo = steady_state_summary(model, 360.0, 0.5, 0.9).total();
  const double hi = steady_state_summary(model, 360.0, 0.5, 1.0).total();
  EXPECT_GT(hi, lo);
}

}  // namespace
}  // namespace ramp::core
