// Tests for the fleet-scale scenario engine: scenario presets and strict
// RAMP_FLEET_* parsing, curve accounting, seed determinism, the
// closed-form cross-check against core::LifetimeMonteCarlo, stage-store
// amortization (a 10k-chip fleet costs <= 16 sim-stage computes), and the
// directional effects of DRM policies, attacks, and monitor reconfiguration.
#include "fleet/fleet_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "core/lifetime_mc.hpp"
#include "fleet/scenario.hpp"
#include "obs/metrics.hpp"
#include "pipeline/stage_graph.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::fleet {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    if (value != nullptr) {
      ::setenv(name_.c_str(), value, /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

// Small, fast scenario: short traces, few chips. Results stay deterministic
// regardless of size, so every structural property can be checked cheaply.
FleetScenario quick_scenario(std::uint64_t chips = 2000) {
  FleetScenario sc = FleetScenario::preset("baseline");
  sc.chips = chips;
  sc.cell.trace_instructions = 2000;
  sc.cell.cache_enabled = false;
  return sc;
}

std::uint64_t count(obs::MetricsRegistry& reg, const std::string& name) {
  return reg.counter(name).value();
}

TEST(FleetScenarioTest, PresetsAndValidation) {
  EXPECT_EQ(FleetScenario::preset("baseline").kind, ScenarioKind::kBaseline);
  EXPECT_EQ(FleetScenario::preset("attack").kind, ScenarioKind::kAttack);
  const FleetScenario monitor = FleetScenario::preset("monitor");
  EXPECT_EQ(monitor.kind, ScenarioKind::kMonitor);
  EXPECT_GT(monitor.spares.total(), 0);
  EXPECT_THROW(FleetScenario::preset("warp-core"), InvalidArgument);

  FleetScenario bad = FleetScenario::preset("baseline");
  bad.chips = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FleetScenario::preset("baseline");
  bad.horizon_years = -1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FleetScenario::preset("baseline");
  bad.infant.fraction = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(FleetScenarioTest, PolicyNamesRoundTrip) {
  for (const auto p :
       {DrmPolicy::kNone, DrmPolicy::kDvfs, DrmPolicy::kMigration}) {
    EXPECT_EQ(parse_policy(std::string(policy_name(p))), p);
  }
  EXPECT_THROW(parse_policy("turbo"), InvalidArgument);
}

TEST(FleetScenarioTest, FromEnvAppliesOverrides) {
  ScopedEnv scenario("RAMP_FLEET_SCENARIO", "attack");
  ScopedEnv chips("RAMP_FLEET_CHIPS", "123");
  ScopedEnv seed("RAMP_FLEET_SEED", "7");
  ScopedEnv years("RAMP_FLEET_YEARS", "12.5");
  ScopedEnv policy("RAMP_FLEET_POLICY", "dvfs");
  ScopedEnv ladder("RAMP_FLEET_LADDER", "5");
  ScopedEnv node("RAMP_FLEET_NODE", "65-1.0");
  const FleetScenario sc = FleetScenario::from_env();
  EXPECT_EQ(sc.kind, ScenarioKind::kAttack);
  EXPECT_EQ(sc.chips, 123u);
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_DOUBLE_EQ(sc.horizon_years, 12.5);
  EXPECT_EQ(sc.policy, DrmPolicy::kDvfs);
  EXPECT_EQ(sc.ladder_points, 5);
  EXPECT_EQ(sc.tech, scaling::TechPoint::k65nm_1V0);
}

// A misspelled override must throw, never silently fall back to a default.
TEST(FleetScenarioTest, FromEnvRejectsGarbage) {
  {
    ScopedEnv e("RAMP_FLEET_CHIPS", "ten");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_CHIPS", "0");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_SEED", "-3");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_YEARS", "soon");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_YEARS", "0");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_PHASE_YEARS", "-0.5");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_BIN_YEARS", "1.0x");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_LADDER", "0");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_LADDER", "17");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_POLICY", "turbo");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_SCENARIO", "warp-core");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
  {
    ScopedEnv e("RAMP_FLEET_NODE", "7nm");
    EXPECT_THROW(FleetScenario::from_env(), InvalidArgument);
  }
}

TEST(FleetSimulatorTest, CurveAccountingIsConsistent) {
  const FleetSimulator sim(quick_scenario());
  const FleetResult r = sim.run();

  ASSERT_EQ(r.curve.size(), 30u);
  std::uint64_t failures = 0;
  std::uint64_t prev_survivors = r.summary.chips;
  for (const auto& pt : r.curve) {
    std::uint64_t by_cause = 0;
    for (const auto n : pt.by_cause) by_cause += n;
    EXPECT_EQ(by_cause, pt.failures);
    EXPECT_EQ(pt.survivors, prev_survivors - pt.failures);
    prev_survivors = pt.survivors;
    failures += pt.failures;
    EXPECT_NEAR(pt.survival,
                static_cast<double>(pt.survivors) /
                    static_cast<double>(r.summary.chips),
                1e-12);
  }
  EXPECT_EQ(failures, r.summary.failed);
  EXPECT_DOUBLE_EQ(r.summary.survival_at_horizon, r.curve.back().survival);

  std::uint64_t cause_total = 0;
  for (const auto n : r.summary.failures_by_cause) cause_total += n;
  EXPECT_EQ(cause_total, r.summary.failed);
  EXPECT_GT(r.summary.failed, 0u);
  // Baseline never throttles, migrates, or reconfigures.
  EXPECT_EQ(r.summary.throttle_switches, 0u);
  EXPECT_EQ(r.summary.migrations, 0u);
  EXPECT_EQ(r.summary.monitor_reconfigs, 0u);
  EXPECT_DOUBLE_EQ(r.summary.avg_relative_performance, 1.0);
}

TEST(FleetSimulatorTest, SameSeedSameBytesDifferentSeedDiffers) {
  const FleetScenario sc = quick_scenario(1000);
  const std::string a = fleet_curve_csv(FleetSimulator(sc).run());
  const std::string b = fleet_curve_csv(FleetSimulator(sc).run());
  EXPECT_EQ(a, b);

  FleetScenario other = sc;
  other.seed = 43;
  EXPECT_NE(a, fleet_curve_csv(FleetSimulator(other).run()));
}

// Degenerate scenario with every stochastic knob off and exponential
// thresholds: each chip is the paper's SOFR processor, so the fleet's
// empirical survival must match both the analytic series-system value and
// core::LifetimeMonteCarlo's survival() for the same qualified summary.
TEST(FleetSimulatorTest, ExponentialFleetMatchesClosedForm) {
  FleetScenario sc = quick_scenario(8000);
  sc.apps = {"gcc"};
  sc.variation.mechanism_sigma = 0.0;
  sc.variation.leakage_sigma = 0.0;
  sc.infant.fraction = 0.0;
  sc.lifetime.family = core::LifetimeFamily::kExponential;

  const FleetSimulator sim(sc);
  const FleetResult r = sim.run();

  // Qualification over the single-app pool makes the chip exactly 4000 FIT.
  const double total_fit = sim.cells()[0][0].total_fit;
  EXPECT_NEAR(total_fit, 4000.0, 1e-6);

  const double expected = std::exp(-total_fit * sc.horizon_years *
                                   kHoursPerYear / kFitHours);
  EXPECT_NEAR(r.summary.survival_at_horizon, expected, 0.02);

  const core::LifetimeMonteCarlo mc(sim.cells()[0][0].fits, sc.lifetime);
  EXPECT_NEAR(r.summary.survival_at_horizon, mc.survival(sc.horizon_years),
              0.02);
}

// The whole amortization argument: a 10k-chip fleet shares the per-(app,
// rung) physics through the stage store, so it costs at most one sim-stage
// compute per workload — and a second fleet against a warm store costs none.
TEST(FleetSimulatorTest, TenThousandChipsCostSixteenSimStages) {
  obs::MetricsRegistry reg;
  pipeline::StageStore::Options sopts;
  sopts.registry = &reg;
  const auto store = std::make_shared<pipeline::StageStore>(std::move(sopts));

  FleetScenario sc = quick_scenario(10000);
  sc.cell.stage_cache_enabled = true;
  FleetSimulator::Options opts;
  opts.stage_store = store;
  opts.registry = &reg;
  opts.jobs = 2;

  const FleetResult r = FleetSimulator(sc, opts).run();
  EXPECT_EQ(r.summary.chips, 10000u);
  const std::uint64_t misses = count(reg, "ramp_stage_sim_misses_total");
  EXPECT_LE(misses, 16u);
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(count(reg, "ramp_fleet_chips_total"), 10000u);

  // Warm store: the second fleet re-runs zero sim stages (the cached final
  // fit stage short-circuits the whole per-cell pipeline).
  FleetSimulator(sc, opts).run();
  EXPECT_EQ(count(reg, "ramp_stage_sim_misses_total"), misses);
  EXPECT_GT(count(reg, "ramp_stage_fit_hits_total"), 0u);
}

// A DVFS policy with a tight budget throttles (performance cost) and
// extends survival relative to no response, on the identical chip
// population (common random numbers).
TEST(FleetPolicyTest, DvfsThrottlingTradesPerformanceForSurvival) {
  FleetScenario none = quick_scenario(3000);
  none.drm.fit_budget = 2000.0;
  FleetScenario dvfs = none;
  dvfs.policy = DrmPolicy::kDvfs;

  const FleetResult r_none = FleetSimulator(none).run();
  const FleetResult r_dvfs = FleetSimulator(dvfs).run();
  EXPECT_GT(r_dvfs.summary.throttle_switches, 0u);
  EXPECT_LT(r_dvfs.summary.avg_relative_performance, 1.0);
  EXPECT_LT(r_dvfs.summary.failed, r_none.summary.failed);
}

TEST(FleetPolicyTest, MigrationCoolsOverBudgetChips) {
  FleetScenario mig = quick_scenario(3000);
  mig.policy = DrmPolicy::kMigration;
  mig.drm.fit_budget = 2000.0;  // most apps run over budget: migrate often
  const FleetResult r = FleetSimulator(mig).run();
  EXPECT_GT(r.summary.migrations, 0u);

  FleetScenario none = mig;
  none.policy = DrmPolicy::kNone;
  EXPECT_LT(r.summary.failed, FleetSimulator(none).run().summary.failed);
}

TEST(FleetPolicyTest, TargetedAttackAcceleratesWearout) {
  FleetScenario attack = FleetScenario::preset("attack");
  attack.chips = 3000;
  attack.cell.trace_instructions = 2000;
  attack.cell.cache_enabled = false;
  attack.attack.targeted_fraction = 1.0;
  attack.attack.occupancy = 1.0;

  FleetScenario baseline = attack;
  baseline.kind = ScenarioKind::kBaseline;

  const FleetResult r_attack = FleetSimulator(attack).run();
  const FleetResult r_base = FleetSimulator(baseline).run();
  EXPECT_GT(r_attack.summary.failed, r_base.summary.failed);
}

TEST(FleetPolicyTest, MonitorReconfigurationExtendsLifetime) {
  FleetScenario monitor = FleetScenario::preset("monitor");
  monitor.chips = 3000;
  monitor.cell.trace_instructions = 2000;
  monitor.cell.cache_enabled = false;

  const FleetResult r = FleetSimulator(monitor).run();
  EXPECT_GT(r.summary.monitor_reconfigs, 0u);
  EXPECT_GT(r.summary.spare_activations, 0u);

  FleetScenario inert = monitor;
  inert.kind = ScenarioKind::kBaseline;
  inert.spares = core::SparePlan{};
  EXPECT_LT(r.summary.failed, FleetSimulator(inert).run().summary.failed);
}

TEST(FleetExportTest, CsvAndNdjsonCarryTheCurve) {
  const FleetSimulator sim(quick_scenario(500));
  const FleetResult r = sim.run();
  const std::string csv = fleet_curve_csv(r);
  EXPECT_EQ(csv.rfind("# ramp_fleet v1\n", 0), 0u);
  EXPECT_NE(csv.find("t_end_years,failures,survivors,survival"),
            std::string::npos);
  // Header comments + column row + one line per bin.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3 + 30);

  const std::string nd = fleet_ndjson(r);
  EXPECT_EQ(nd.rfind("{\"type\":\"summary\"", 0), 0u);
  EXPECT_EQ(std::count(nd.begin(), nd.end(), '\n'), 1 + 30);

  const std::string ab = fleet_ab_csv(r, r);
  EXPECT_EQ(ab.rfind("# ramp_fleet_ab v1\n", 0), 0u);
  EXPECT_NE(ab.find(",0,"), std::string::npos);  // zero deltas vs itself
}

TEST(FleetExportTest, AbRequiresMatchingBins) {
  const FleetResult a = FleetSimulator(quick_scenario(200)).run();
  FleetScenario sc = quick_scenario(200);
  sc.horizon_years = 10.0;
  const FleetResult b = FleetSimulator(sc).run();
  EXPECT_THROW(fleet_ab_csv(a, b), InvalidArgument);
}

}  // namespace
}  // namespace ramp::fleet
