// Flight-recorder concurrency tests (run under TSan via `ctest -L
// concurrency`): recording timelines must not perturb sweep results at any
// job count, the exported per-cell CSVs must be byte-identical between
// jobs=1 and jobs=4 (the stride-doubling sketch is a pure function of the
// interval sequence), and a watchdog trip in every cell must never abort
// the sweep.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "obs/timeline.hpp"
#include "pipeline/sweep.hpp"

namespace ramp::pipeline {
namespace {

EvaluationConfig quick_config(bool timeline) {
  EvaluationConfig cfg;
  cfg.trace_instructions = 8'000;
  cfg.timeline_enabled = timeline;
  cfg.timeline_points = 32;
  return cfg;
}

SweepResult run(const EvaluationConfig& cfg, std::size_t jobs) {
  SweepRunner::Options opts;
  opts.jobs = jobs;
  opts.cache_path = "";
  return SweepRunner(cfg, opts).run();
}

std::map<std::string, std::string> csv_by_cell(const SweepResult& sweep) {
  std::map<std::string, std::string> out;
  for (const auto& r : sweep.results) {
    EXPECT_FALSE(r.timeline.empty());
    out[r.timeline.cell] = obs::timeline_to_csv(r.timeline);
  }
  return out;
}

TEST(TimelineParallelTest, RecordingDoesNotChangeSweepResults) {
  const std::string plain = sweep_to_csv(run(quick_config(false), 4));
  const std::string recorded = sweep_to_csv(run(quick_config(true), 4));
  EXPECT_EQ(plain, recorded);
}

TEST(TimelineParallelTest, TimelinesAreByteIdenticalAcrossJobCounts) {
  const auto serial = csv_by_cell(run(quick_config(true), 1));
  const auto parallel = csv_by_cell(run(quick_config(true), 4));
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (const auto& [cell, csv] : serial) {
    ASSERT_TRUE(parallel.count(cell)) << cell;
    EXPECT_EQ(parallel.at(cell), csv) << cell;
  }
}

TEST(TimelineParallelTest, WatchdogTripInEveryCellNeverAbortsTheSweep) {
  EvaluationConfig cfg = quick_config(true);
  cfg.watchdog.max_temp_k = 250.0;  // below any simulated temperature
  const SweepResult sweep = run(cfg, 4);

  // Every cell still completed...
  const std::string plain = sweep_to_csv(run(quick_config(true), 4));
  EXPECT_EQ(sweep_to_csv(sweep), plain);

  // ...and each carries exactly one over_temperature incident with the
  // required flight-recorder payload.
  ASSERT_FALSE(sweep.results.empty());
  for (const auto& r : sweep.results) {
    std::size_t over_temp = 0;
    for (const auto& inc : r.incidents) {
      if (inc.rule != "over_temperature") continue;
      ++over_temp;
      EXPECT_EQ(inc.cell, r.timeline.cell);
      EXPECT_GE(inc.points.size(), 1u);
      EXPECT_GE(inc.spans.size(), 1u);
    }
    EXPECT_EQ(over_temp, 1u) << r.timeline.cell;
  }
}

}  // namespace
}  // namespace ramp::pipeline
