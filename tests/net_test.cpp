// Unit tests for the net building blocks: consistent-hash ring placement
// (deterministic, balanced, stable under resize), epoll event loop
// semantics (dispatch, modify, safe removal mid-batch, cross-thread wake),
// and the socket helpers (ephemeral bind, connect/accept round trip).
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/hash_ring.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace ramp::net {
namespace {

TEST(HashRingTest, PlacementIsDeterministic) {
  const HashRing a(4), b(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.shard_for(key), b.shard_for(key));
  }
}

TEST(HashRingTest, EveryShardOwnsAFairShare) {
  constexpr std::size_t kShards = 4;
  const HashRing ring(kShards);
  std::map<std::size_t, int> counts;
  constexpr int kKeys = 20'000;
  for (int i = 0; i < kKeys; ++i) {
    const std::size_t s = ring.shard_for("app=gcc|node=" + std::to_string(i));
    ASSERT_LT(s, kShards);
    counts[s]++;
  }
  // 64 vnodes per shard keeps shares near uniform; accept a 2x band.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kKeys / (2 * static_cast<int>(kShards)))
        << "shard " << s << " starved";
    EXPECT_LT(counts[s], kKeys / static_cast<int>(kShards) * 2)
        << "shard " << s << " overloaded";
  }
}

TEST(HashRingTest, ResizeMovesOnlyASliverOfTheKeyspace) {
  const HashRing before(4), after(5);
  constexpr int kKeys = 20'000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (before.shard_for(key) != after.shard_for(key)) moved++;
  }
  // Consistent hashing moves ~1/5 of keys on 4 -> 5; hash % N would move
  // ~4/5. The midpoint separates the two behaviors decisively.
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  const HashRing ring(1);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(ring.shard_for(std::to_string(i)), 0u);
}

TEST(EventLoopTest, DispatchesReadableFd) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  loop.add(fds[0], EPOLLIN, [&](std::uint32_t) { fired++; });
  EXPECT_EQ(loop.run_once(0), 0);  // nothing readable yet
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.run_once(1000), 1);
  EXPECT_EQ(fired, 1);
  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, RemoveMidBatchSuppressesStaleDelivery) {
  EventLoop loop;
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  int delivered = 0;
  // Whichever callback fires first removes BOTH fds; the sibling's already-
  // collected event must not be delivered to a dead registration.
  const auto nuke = [&](std::uint32_t) {
    delivered++;
    if (loop.watched(a[0])) loop.remove(a[0]);
    if (loop.watched(b[0])) loop.remove(b[0]);
  };
  loop.add(a[0], EPOLLIN, nuke);
  loop.add(b[0], EPOLLIN, nuke);
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "x", 1), 1);
  loop.run_once(1000);
  EXPECT_EQ(delivered, 1);
  for (int fd : {a[0], a[1], b[0], b[1]}) ::close(fd);
}

TEST(EventLoopTest, WakeFromAnotherThreadInterruptsWait) {
  EventLoop loop;
  std::atomic<bool> woke{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    woke.store(true);
    loop.wake();
  });
  // Without the wake this would block the full 10 s and the test would
  // time out; with it, run_once returns promptly after ~50 ms.
  loop.run_once(10'000);
  EXPECT_TRUE(woke.load());
  waker.join();
}

TEST(EventLoopTest, ModifySwitchesInterestSet) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  loop.add(fds[0], 0, [&](std::uint32_t) { fired++; });  // not watching IN
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.run_once(0), 0);
  loop.modify(fds[0], EPOLLIN);
  EXPECT_EQ(loop.run_once(1000), 1);
  EXPECT_EQ(fired, 1);
  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketTest, EphemeralBindReportsRealPort) {
  const OwnedFd listener = listen_tcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(local_port(listener.get()), 0);
}

TEST(SocketTest, ConnectAcceptRoundTrip) {
  const OwnedFd listener = listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener.get());
  const OwnedFd client = connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(client.valid());

  OwnedFd accepted;
  for (int i = 0; i < 100 && !accepted.valid(); ++i) {
    accepted = accept_client(listener.get());
    if (!accepted.valid())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(accepted.valid());

  ASSERT_EQ(::write(client.get(), "ping", 4), 4);
  char buf[8] = {};
  ssize_t n = -1;
  for (int i = 0; i < 100 && n < 0; ++i) {
    n = ::read(accepted.get(), buf, sizeof buf);  // non-blocking accept fd
    if (n < 0 && errno == EAGAIN)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::string(buf, 4), "ping");
}

TEST(SocketTest, BadAddressThrowsInvalidArgument) {
  EXPECT_THROW(listen_tcp("not-an-address", 0), InvalidArgument);
}

TEST(SocketTest, OwnedFdMoveTransfersOwnership) {
  OwnedFd a = listen_tcp("127.0.0.1", 0);
  const int raw = a.get();
  OwnedFd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
}

}  // namespace
}  // namespace ramp::net
