// Cross-PROCESS BlobStore safety: two forked children hammer one persist
// directory concurrently — same keys, different write timing — and every
// read must come back either a miss or the complete, correctly-keyed
// payload. Torn reads are impossible because writes go through a
// same-directory temp file (named with pid + per-process counter, so
// concurrent processes never collide) plus an atomic rename; this test is
// the regression net for that contract, which in-process tests cannot
// exercise.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "util/blob_store.hpp"
#include "util/error.hpp"

namespace ramp {
namespace {

namespace fs = std::filesystem;

/// The payload for key i: self-describing and long enough (~64 KiB) that a
/// non-atomic writer would be caught mid-write by a concurrent reader.
std::string payload_for(int i) {
  std::string p = "payload-" + std::to_string(i) + ":";
  p.resize(64 * 1024, static_cast<char>('a' + (i % 26)));
  return p;
}

/// One contender process body: rounds of get_or_compute over a shared key
/// set, fresh BlobStore each round (so the memory tier never masks disk
/// reads). Exits 0 if every payload observed was exact, 1 otherwise.
int contend(const std::string& dir, unsigned seed) {
  constexpr int kKeys = 16;
  constexpr int kRounds = 40;
  unsigned state = seed;
  for (int round = 0; round < kRounds; ++round) {
    BlobStore::Options opts;
    opts.dir = dir;
    opts.memory_entries = 4;  // tiny LRU: force disk traffic
    BlobStore store(opts);
    for (int k = 0; k < kKeys; ++k) {
      state = state * 1664525u + 1013904223u;
      const int i = static_cast<int>(state % kKeys);
      const std::string key = "ipc-key-" + std::to_string(i);
      const std::string expected = payload_for(i);
      const BlobStore::Result r = store.get_or_compute(
          key, [&] { return expected; },
          // validate() sees every disk read: a torn or mis-keyed file
          // must either fail validation (-> recompute) or never appear.
          [&](const std::string& blob) { return blob == expected; });
      if (*r.blob != expected) return 1;
    }
  }
  return 0;
}

TEST(BlobStoreIpcTest, TwoProcessesShareOnePersistDirWithoutTornReads) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("ramp_blob_ipc_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  pid_t pids[2];
  for (int c = 0; c < 2; ++c) {
    pids[c] = ::fork();
    ASSERT_GE(pids[c], 0);
    if (pids[c] == 0) {
      // Child: no gtest machinery past this point; exit code is the verdict.
      int rc = 1;
      try {
        rc = contend(dir.string(), 7919u * static_cast<unsigned>(c + 1));
      } catch (const std::exception&) {
        rc = 2;
      }
      ::_exit(rc);
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child observed a corrupt payload";
  }

  // No temp droppings left behind: every .tmp either renamed or was the
  // other process's in-flight write that has since renamed too.
  int tmp_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp") != std::string::npos)
      tmp_files++;
  }
  EXPECT_EQ(tmp_files, 0);
  fs::remove_all(dir);
}

TEST(BlobStoreIpcTest, ProcessCrashMidWriteNeverCorruptsAReader) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("ramp_blob_crash_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Plant a half-written temp file where a crashed writer would leave one;
  // a reader must treat the key as a miss (temp files are invisible to the
  // digest-named lookup) and recompute cleanly.
  const std::string key = "crash-key";
  {
    BlobStore::Options opts;
    opts.dir = dir.string();
    const BlobStore store(opts);
    const std::string final_path = store.path_for(key);
    const std::string tmp = final_path + ".tmp.99999.0";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn", f);
    std::fclose(f);
  }

  BlobStore::Options opts;
  opts.dir = dir.string();
  BlobStore store(opts);
  const BlobStore::Result r =
      store.get_or_compute(key, [] { return std::string("fresh"); });
  EXPECT_EQ(*r.blob, "fresh");
  EXPECT_EQ(r.outcome, BlobStore::Outcome::kComputed);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ramp
