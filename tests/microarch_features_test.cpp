// Tests for the optional (ablation) microarchitecture features:
// store-to-load forwarding and next-line prefetching.
#include <gtest/gtest.h>

#include <deque>

#include "sim/memory_hierarchy.hpp"
#include "sim/ooo_core.hpp"
#include "trace/synthetic_generator.hpp"

namespace ramp::sim {
namespace {

using trace::Instruction;
using trace::OpClass;

class ScriptedTrace final : public trace::TraceReader {
 public:
  explicit ScriptedTrace(std::deque<Instruction> script)
      : script_(std::move(script)) {}
  bool next(Instruction& out) override {
    if (script_.empty()) return false;
    out = script_.front();
    script_.pop_front();
    return true;
  }

 private:
  std::deque<Instruction> script_;
};

// Store/reload ping-pong to a cold, far-away address every iteration.
std::deque<Instruction> store_reload(int n) {
  std::deque<Instruction> s;
  for (int k = 0; k < n; ++k) {
    const std::uint64_t addr =
        0x10000000 + static_cast<std::uint64_t>(k) * 128;  // always cold
    Instruction st;
    st.op = OpClass::kStore;
    st.src1 = 1;
    st.src2 = 2;
    st.mem_addr = addr;
    st.pc = 0x10000 + static_cast<std::uint64_t>(k % 256) * 8;
    s.push_back(st);
    Instruction ld;
    ld.op = OpClass::kLoad;
    ld.dst = 3;
    ld.mem_addr = addr;
    ld.pc = st.pc + 4;
    s.push_back(ld);
  }
  return s;
}

TEST(StoreForwardingTest, ForwardedLoadsBypassTheCache) {
  // In this hierarchy a store's write-allocate installs the line before a
  // dependent load issues, so forwarding is largely timing-neutral for
  // store-then-reload patterns; its observable effects are (1) the reload
  // no longer generates cache traffic and (2) timing never gets worse.
  CoreConfig off = base_core_config();
  CoreConfig on = base_core_config();
  on.enable_store_forwarding = true;

  ScriptedTrace t_off(store_reload(3000));
  const auto r_off = OooCore(off).run(t_off, 5000);
  ScriptedTrace t_on(store_reload(3000));
  const auto r_on = OooCore(on).run(t_on, 5000);

  EXPECT_LE(r_on.totals.cycles, r_off.totals.cycles);
  // Every reload (half of all mem ops) is forwarded: ~half the accesses.
  EXPECT_LT(r_on.totals.l1d_accesses, r_off.totals.l1d_accesses * 6 / 10);
}

TEST(StoreForwardingTest, NoEffectWithoutAddressMatches) {
  // Loads to disjoint addresses: forwarding must change nothing.
  auto disjoint = [] {
    std::deque<Instruction> s;
    for (int k = 0; k < 2000; ++k) {
      Instruction ld;
      ld.op = OpClass::kLoad;
      ld.dst = static_cast<std::uint16_t>(k % 8);
      ld.mem_addr = 0x200000 + static_cast<std::uint64_t>(k % 64) * 8;
      ld.pc = 0x10000 + static_cast<std::uint64_t>(k % 256) * 4;
      s.push_back(ld);
    }
    return s;
  };
  CoreConfig on = base_core_config();
  on.enable_store_forwarding = true;
  ScriptedTrace a(disjoint());
  ScriptedTrace b(disjoint());
  const auto r_off = OooCore(base_core_config()).run(a, 5000);
  const auto r_on = OooCore(on).run(b, 5000);
  EXPECT_EQ(r_off.totals.cycles, r_on.totals.cycles);
}

TEST(NextLinePrefetchTest, StreamingMissesHalve) {
  // A pure sequential walk misses every new line without prefetch and
  // every other line with it.
  CoreConfig cfg = base_core_config();
  cfg.enable_nextline_prefetch = true;
  MemoryHierarchy with(cfg);
  MemoryHierarchy without(base_core_config());
  for (int k = 0; k < 4096; ++k) {
    const std::uint64_t addr = 0x300000 + static_cast<std::uint64_t>(k) * 8;
    with.data_access(addr, false);
    without.data_access(addr, false);
  }
  // 64 B lines, 8 B stride: 512 distinct lines. A next-line-on-miss
  // prefetcher converts every other demand miss into a hit (~halving).
  EXPECT_GE(without.l1d().misses(), 512u);
  EXPECT_LT(with.l1d().misses(), without.l1d().misses() * 6 / 10);
}

TEST(NextLinePrefetchTest, RandomAccessUnhelped) {
  // Scattered accesses over a huge footprint: prefetching the next line
  // almost never helps (and must not hurt correctness).
  CoreConfig cfg = base_core_config();
  cfg.enable_nextline_prefetch = true;
  MemoryHierarchy with(cfg);
  MemoryHierarchy without(base_core_config());
  std::uint64_t x = 88172645463325252ULL;
  for (int k = 0; k < 20000; ++k) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t addr = 0x40000000 + (x % (64ULL * 1024 * 1024));
    with.data_access(addr, false);
    without.data_access(addr, false);
  }
  const double rate_with = with.l1d().miss_rate();
  const double rate_without = without.l1d().miss_rate();
  EXPECT_NEAR(rate_with, rate_without, 0.05);
}

TEST(NextLinePrefetchTest, HelpsStreamHeavyWorkloadIpc) {
  trace::GeneratorProfile p;
  p.op_mix = {20, 1, 0, 30, 0.5, 30, 10, 2, 2};
  p.stream_fraction = 0.95;
  p.stream_stride = 64;  // line-stride stream: every access a new line
  p.hot_footprint_bytes = 8 * 1024 * 1024;  // streams never wrap into cache
  p.cold_fraction = 0.0;
  auto run = [&](bool prefetch) {
    CoreConfig cfg = base_core_config();
    cfg.enable_nextline_prefetch = prefetch;
    trace::SyntheticTrace t(p, 40000, 21);
    return OooCore(cfg).run(t, 1100).totals;
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_GT(on.ipc(), off.ipc() * 1.1);
}

}  // namespace
}  // namespace ramp::sim
