// Tests for the memory hierarchy timing wrapper and core structures.
#include "sim/memory_hierarchy.hpp"

#include <gtest/gtest.h>

#include "sim/structures.hpp"
#include "util/error.hpp"

namespace ramp::sim {
namespace {

TEST(MemoryHierarchyTest, LatencyLadder) {
  MemoryHierarchy mem(base_core_config());
  const CoreConfig cfg = base_core_config();
  // Cold: miss everywhere -> memory latency.
  EXPECT_EQ(mem.data_access(0x1000, false), cfg.lat_memory);
  // Warm L1: hit latency.
  EXPECT_EQ(mem.data_access(0x1000, false), cfg.lat_l1d);
  // Different L1 line, same L2 line (L2 lines are 128 B): L2 hit.
  EXPECT_EQ(mem.data_access(0x1040, false), cfg.lat_l2);
}

TEST(MemoryHierarchyTest, FetchLatencies) {
  MemoryHierarchy mem(base_core_config());
  const CoreConfig cfg = base_core_config();
  EXPECT_EQ(mem.fetch_access(0x400000), cfg.lat_memory);
  EXPECT_EQ(mem.fetch_access(0x400000), 0);  // L1I hit
  EXPECT_EQ(mem.fetch_access(0x400040), cfg.lat_l2);  // same 128B L2 line
}

TEST(MemoryHierarchyTest, WritesAllocateAndDirty) {
  MemoryHierarchy mem(base_core_config());
  mem.data_access(0x2000, true);   // miss, write-allocate, dirty
  EXPECT_EQ(mem.data_access(0x2000, false), base_core_config().lat_l1d);
}

TEST(MemoryHierarchyTest, MissPortAccounting) {
  MemoryHierarchy mem(base_core_config());
  EXPECT_FALSE(mem.miss_ports_full());
  for (int i = 0; i < base_core_config().max_outstanding_misses; ++i) {
    mem.add_outstanding_miss();
  }
  EXPECT_TRUE(mem.miss_ports_full());
  mem.retire_miss();
  EXPECT_FALSE(mem.miss_ports_full());
}

TEST(MemoryHierarchyTest, RetireWithoutMissIsAnError) {
  MemoryHierarchy mem(base_core_config());
  EXPECT_THROW(mem.retire_miss(), InternalError);
}

TEST(MemoryHierarchyTest, InstructionAndDataStreamsAreSeparateL1s) {
  MemoryHierarchy mem(base_core_config());
  mem.data_access(0x3000, false);           // warm D-side
  EXPECT_GT(mem.fetch_access(0x3000), 0);   // I-side still cold (same addr)
}

TEST(StructuresTest, AreaFractionsSumToOne) {
  double sum = 0;
  for (const auto s : kAllStructures) sum += structure_area_fraction(s);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(StructuresTest, NamesAreUniqueAndStable) {
  EXPECT_EQ(structure_name(StructureId::kLsu), "LSU");
  EXPECT_EQ(structure_name(StructureId::kFpu), "FPU");
  std::set<std::string_view> names;
  for (const auto s : kAllStructures) names.insert(structure_name(s));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumStructures));
}

TEST(CoreConfigTest, ScaledConfigKeepsMicroarchitecture) {
  const CoreConfig base = base_core_config();
  const CoreConfig scaled =
      core_config_for(scaling::node(scaling::TechPoint::k65nm_1V0));
  EXPECT_EQ(scaled.rob_size, base.rob_size);
  EXPECT_EQ(scaled.fetch_width, base.fetch_width);
  EXPECT_EQ(scaled.lat_l2, base.lat_l2);  // on-chip latency: same cycles
  EXPECT_DOUBLE_EQ(scaled.frequency_hz, 2.0e9);
  // Main memory: fixed ns -> more cycles at the faster clock.
  EXPECT_NEAR(static_cast<double>(scaled.lat_memory),
              102.0 * 2.0e9 / 1.1e9, 1.0);
}

TEST(CoreConfigTest, RenameBudgets) {
  const CoreConfig cfg = base_core_config();
  EXPECT_EQ(cfg.int_rename_budget(), 120 - 32);
  EXPECT_EQ(cfg.fp_rename_budget(), 96 - 32);
}

}  // namespace
}  // namespace ramp::sim
