// Pins down the zero-allocation hot path: this binary replaces the global
// allocation functions with counting wrappers and asserts that the
// per-interval kernels (LU solve, steady state, transient step, FIT
// accumulation) perform no heap traffic once their workspaces are warm, and
// that the evaluator's per-interval cost is allocation-free in the
// amortized sense (doubling the interval count adds only vector growth).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/fit_tracker.hpp"
#include "core/ramp_model.hpp"
#include "pipeline/evaluator.hpp"
#include "scaling/technology.hpp"
#include "sim/core_config.hpp"
#include "sim/ooo_core.hpp"
#include "thermal/rc_model.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/linalg.hpp"
#include "workloads/spec2k.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace ramp {
namespace {

std::uint64_t allocs() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(AllocationTest, SolveIntoIsAllocationFree) {
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = r == c ? 4.0 : -0.1;
  }
  const LuSolver lu(a);
  const std::vector<double> b(n, 1.0);
  std::vector<double> out;
  lu.solve_into(b, out);  // warm: sizes `out`
  const std::uint64_t before = allocs();
  for (int i = 0; i < 256; ++i) lu.solve_into(b, out);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocationTest, SteadyStateIntoIsAllocationFree) {
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::vector<double> p(net.num_blocks(), 4.0);
  thermal::SteadyWorkspace ws;
  std::vector<double> out;
  net.steady_state_into(p, ws, out);  // warm the workspace
  const std::uint64_t before = allocs();
  for (int i = 0; i < 256; ++i) net.steady_state_into(p, ws, out);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocationTest, TransientStepIsAllocationFree) {
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::vector<double> p(net.num_blocks(), 4.0);
  thermal::Transient tr(net, net.steady_state(p), 1e-6);
  tr.step(p);  // warm (the ctor already sized everything, but be safe)
  const std::uint64_t before = allocs();
  for (int i = 0; i < 1024; ++i) tr.step(p);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocationTest, FitTrackerAddIntervalIsAllocationFree) {
  const core::RampModel model(scaling::base_node());
  core::FitTracker tracker(model);
  std::array<double, sim::kNumStructures> temps{};
  std::array<double, sim::kNumStructures> act{};
  for (int s = 0; s < sim::kNumStructures; ++s) {
    const auto si = static_cast<std::size_t>(s);
    temps[si] = 340.0 + static_cast<double>(s);
    act[si] = 0.1 * static_cast<double>(s % 5);
  }
  tracker.add_interval(temps, act, 1.3, 1e-4);  // warm
  const std::uint64_t before = allocs();
  for (int i = 0; i < 1024; ++i) {
    // Vary the temperature so the memo path exercises misses, not just hits.
    temps[0] = 340.0 + 0.001 * static_cast<double>(i % 7);
    tracker.add_interval(temps, act, 1.3, 1e-4);
  }
  EXPECT_EQ(allocs() - before, 0u);
}

std::uint64_t evaluation_allocs(std::uint64_t instructions) {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = instructions;
  const pipeline::Evaluator ev(cfg);
  trace::SyntheticTrace s(workloads::workload("gzip").profile, instructions,
                          7);
  const std::uint64_t before = allocs();
  ev.evaluate_stream(s, "alloc-probe", 1.0, scaling::TechPoint::k180nm);
  return allocs() - before;
}

std::uint64_t sim_only_allocs(std::uint64_t instructions) {
  // The timing simulation exactly as evaluate_stream runs it (same config,
  // same interval cycles, same trace seed) but without the physics loop.
  const pipeline::EvaluationConfig cfg;
  const auto& tech = scaling::node(scaling::TechPoint::k180nm);
  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg.interval_seconds));
  trace::SyntheticTrace s(workloads::workload("gzip").profile, instructions,
                          7);
  sim::OooCore core(core_cfg);
  const std::uint64_t before = allocs();
  core.run(s, interval_cycles);
  return allocs() - before;
}

TEST(AllocationTest, EvaluatorIntervalLoopIsAmortizedAllocationFree) {
  // Differential probe: the timing simulation's containers (ROB deque,
  // fetch buffer, interval log) allocate as the trace grows, but the
  // physics loop downstream of it must not — its per-interval work runs
  // entirely in the hoisted workspace. Subtracting a sim-only run at each
  // size cancels the simulator's share exactly; what remains is the
  // physics loop's growth, which must be a small constant (amortized
  // vector growth only).
  evaluation_allocs(20'000);  // warm lazy statics (workload tables etc.)
  sim_only_allocs(20'000);
  const std::uint64_t eval1 = evaluation_allocs(40'000);
  const std::uint64_t eval2 = evaluation_allocs(80'000);
  const std::uint64_t sim1 = sim_only_allocs(40'000);
  const std::uint64_t sim2 = sim_only_allocs(80'000);
  const std::uint64_t eval_growth = eval2 - eval1;
  const std::uint64_t sim_growth = sim2 - sim1;
  ASSERT_GE(eval_growth, sim_growth);
  EXPECT_LE(eval_growth - sim_growth, 64u)
      << "eval growth " << eval_growth << " vs sim growth " << sim_growth;
}

}  // namespace
}  // namespace ramp
