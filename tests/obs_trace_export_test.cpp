// Chrome trace-event exporter tests: golden output (the field order and
// sorting are contractual so traces diff cleanly), validity under the
// vendored JSON parser, atomic writes into missing directories, and the
// end-to-end Profiler capture path with its stable ThreadPool tid scheme.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "serve/json.hpp"
#include "util/thread_pool.hpp"

namespace ramp::obs {
namespace {

namespace fs = std::filesystem;

std::vector<ThreadTrace> tiny_snapshot() {
  ThreadTrace worker;
  worker.tid = 2;
  worker.worker_id = 0;
  worker.name = "pool-worker-0";
  worker.events = {
      {Stage::kSim, "gcc@90", 1'500, 2'000'000},
      {Stage::kThermal, "gcc@90", 2'002'000, 500'750},
  };
  ThreadTrace main_thread;
  main_thread.tid = 1;
  main_thread.name = "main";
  main_thread.events = {{Stage::kTotal, "sweep", 0, 3'000'000}};
  // Deliberately out of tid order: the exporter must sort.
  return {worker, main_thread};
}

TEST(ChromeTraceTest, GoldenOutput) {
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"ramp\"}},"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"main\"}},"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"pool-worker-0\"}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"dur\":3000.000,"
      "\"cat\":\"total\",\"name\":\"sweep\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1.500,\"dur\":2000.000,"
      "\"cat\":\"sim\",\"name\":\"gcc@90\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":2002.000,\"dur\":500.750,"
      "\"cat\":\"thermal\",\"name\":\"gcc@90\"}"
      "]}";
  EXPECT_EQ(to_chrome_trace(tiny_snapshot()), expected);
}

TEST(ChromeTraceTest, ParsesWithTheServeCodec) {
  const serve::Json doc = serve::Json::parse(to_chrome_trace(tiny_snapshot()));
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const auto& events = doc.find("traceEvents")->elements();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "M");
  EXPECT_EQ(events[3].find("ph")->as_string(), "X");
  EXPECT_EQ(events[3].find("cat")->as_string(), "total");
  EXPECT_DOUBLE_EQ(events[4].find("ts")->as_number(), 1.5);
}

TEST(ChromeTraceTest, EmptySnapshotIsStillValid) {
  const std::string doc = to_chrome_trace({}, "empty");
  const serve::Json parsed = serve::Json::parse(doc);
  ASSERT_EQ(parsed.find("traceEvents")->elements().size(), 1u);  // process_name
}

TEST(ChromeTraceTest, EqualStartSortsLongerSliceFirst) {
  ThreadTrace t;
  t.tid = 1;
  t.name = "main";
  t.events = {
      {Stage::kFit, "child", 100, 10},
      {Stage::kTotal, "parent", 100, 500},
  };
  const serve::Json doc = serve::Json::parse(to_chrome_trace({t}));
  const auto& events = doc.find("traceEvents")->elements();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].find("name")->as_string(), "parent");
  EXPECT_EQ(events[3].find("name")->as_string(), "child");
}

TEST(WriteTraceFileTest, CreatesMissingParentDirectories) {
  const fs::path dir =
      fs::temp_directory_path() / "ramp_trace_test" / "nested" / "deep";
  fs::remove_all(dir.parent_path().parent_path());
  const fs::path file = dir / "trace.json";

  write_trace_file(file.string(), tiny_snapshot());

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(), to_chrome_trace(tiny_snapshot()) + "\n");
  fs::remove_all(dir.parent_path().parent_path());
}

TEST(ProfilerTraceTest, DisabledProfilerCapturesNothing) {
  Profiler prof(/*enabled=*/false);
  prof.enable_trace();
  EXPECT_FALSE(prof.trace_enabled());
  const auto start = std::chrono::steady_clock::now();
  prof.record_event(Stage::kSim, "x", start, start);
  EXPECT_TRUE(prof.trace_snapshot().empty());
}

TEST(ProfilerTraceTest, CapturesEventsAfterEnable) {
  Profiler prof(/*enabled=*/true);
  const auto before = std::chrono::steady_clock::now();
  prof.record_event(Stage::kSim, "dropped", before, before);  // not yet on
  prof.enable_trace();
  ASSERT_TRUE(prof.trace_enabled());
  const auto start = std::chrono::steady_clock::now();
  prof.record_event(Stage::kSim, "gcc@90", start,
                    start + std::chrono::microseconds(250));
  const auto threads = prof.trace_snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  EXPECT_EQ(threads[0].events[0].name, "gcc@90");
  EXPECT_NEAR(static_cast<double>(threads[0].events[0].dur_ns), 250e3, 1e3);
}

TEST(ProfilerTraceTest, PoolWorkersGetStableTids) {
  Profiler prof(/*enabled=*/true);
  prof.enable_trace();
  ThreadPool pool(2);

  std::vector<std::future<void>> done;
  for (int i = 0; i < 8; ++i) {
    done.push_back(pool.submit([&prof] {
      const auto start = std::chrono::steady_clock::now();
      prof.record_event(Stage::kFit, "cell", start,
                        start + std::chrono::microseconds(10));
    }));
  }
  for (auto& f : done) f.get();

  for (const auto& t : prof.trace_snapshot()) {
    if (t.worker_id >= 0) {
      EXPECT_EQ(t.tid, 2u + static_cast<std::uint64_t>(t.worker_id));
      EXPECT_EQ(t.name,
                "pool-worker-" + std::to_string(t.worker_id));
    }
  }
}

TEST(ProfilerTraceTest, SpanEmitsTraceEventWhenEnabled) {
  Profiler prof(/*enabled=*/true);
  prof.enable_trace();
  { Span span(Stage::kThermal, "art@130", prof); }
  const auto threads = prof.trace_snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  EXPECT_EQ(threads[0].events[0].stage, Stage::kThermal);
  EXPECT_EQ(threads[0].events[0].name, "art@130");
}

TEST(ProfilerTraceTest, ResetClearsCapturedEvents) {
  Profiler prof(/*enabled=*/true);
  prof.enable_trace();
  const auto start = std::chrono::steady_clock::now();
  prof.record_event(Stage::kSim, "x", start,
                    start + std::chrono::microseconds(5));
  ASSERT_FALSE(prof.trace_snapshot().empty());
  prof.reset();
  EXPECT_TRUE(prof.trace_snapshot().empty());
}

}  // namespace
}  // namespace ramp::obs
