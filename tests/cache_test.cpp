// Tests for the set-associative LRU cache model.
#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ramp::sim {
namespace {

CacheConfig small_cache() {
  return {.name = "t", .size_bytes = 1024, .line_bytes = 64, .ways = 2};
}

TEST(CacheTest, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1004));  // same line
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, SetCountFollowsGeometry) {
  Cache c(small_cache());
  EXPECT_EQ(c.num_sets(), 8u);  // 1024 / (64 * 2)
}

TEST(CacheTest, LruEvictsLeastRecent) {
  Cache c(small_cache());
  // Three lines mapping to the same set (stride = sets * line = 512).
  c.access(0x0000);
  c.access(0x0200);
  c.access(0x0000);        // touch first again => 0x0200 is LRU
  c.access(0x0400);        // evicts 0x0200
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x0200));
  EXPECT_TRUE(c.probe(0x0400));
}

TEST(CacheTest, ProbeDoesNotMutate) {
  Cache c(small_cache());
  c.access(0x0000);
  const auto before = c.accesses();
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x9999000));
  EXPECT_EQ(c.accesses(), before);
}

TEST(CacheTest, DirtyEvictionCountsWriteback) {
  Cache c(small_cache());
  c.access(0x0000, /*is_write=*/true);
  c.access(0x0200);
  c.access(0x0400);  // evicts dirty 0x0000
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, CleanEvictionNoWriteback) {
  Cache c(small_cache());
  c.access(0x0000);
  c.access(0x0200);
  c.access(0x0400);
  EXPECT_EQ(c.writebacks(), 0u);
}

TEST(CacheTest, ResetClearsContentsAndStats) {
  Cache c(small_cache());
  c.access(0x0000, true);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.probe(0x0000));
}

TEST(CacheTest, MissRate) {
  Cache c(small_cache());
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.0);
  c.access(0x0000);
  c.access(0x0000);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
}

TEST(CacheTest, WorkingSetSmallerThanCacheConverges) {
  // Property: random accesses within a footprint smaller than the cache
  // must reach a ~0 miss rate after warmup.
  Cache c({.name = "L1", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 2});
  Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) c.access(rng.below(8 * 1024));
  const auto warm_misses = c.misses();
  for (int i = 0; i < 50000; ++i) c.access(rng.below(8 * 1024));
  EXPECT_EQ(c.misses(), warm_misses);  // fully resident
}

TEST(CacheTest, WorkingSetLargerThanCacheKeepsMissing) {
  Cache c({.name = "L1", .size_bytes = 8 * 1024, .line_bytes = 64, .ways = 2});
  Xoshiro256 rng(6);
  for (int i = 0; i < 20000; ++i) c.access(rng.below(1024 * 1024));
  EXPECT_GT(c.miss_rate(), 0.5);
}

TEST(CacheTest, RejectsBadGeometry) {
  EXPECT_THROW(Cache({.size_bytes = 1000, .line_bytes = 64, .ways = 2}),
               InvalidArgument);
  EXPECT_THROW(Cache({.size_bytes = 1024, .line_bytes = 48, .ways = 2}),
               InvalidArgument);
  EXPECT_THROW(Cache({.size_bytes = 1024, .line_bytes = 64, .ways = 0}),
               InvalidArgument);
}

// Property: hits + misses == accesses across associativities.
class CacheAssocTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheAssocTest, AccountingInvariant) {
  Cache c({.name = "t", .size_bytes = 16 * 1024, .line_bytes = 64,
           .ways = GetParam()});
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 30000; ++i) {
    c.access(rng.below(256 * 1024), rng.bernoulli(0.3));
  }
  EXPECT_EQ(c.hits() + c.misses(), c.accesses());
  EXPECT_LE(c.writebacks(), c.misses());
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheAssocTest, ::testing::Values(1u, 2u, 4u, 8u));

// Property: a larger cache never has more misses on the same trace (LRU
// inclusion property holds per-set for same line size & ways when sets
// double — we check empirically on random traces).
TEST(CacheTest, BiggerCacheNoWorseOnRandomTrace) {
  Cache small({.name = "s", .size_bytes = 8 * 1024, .line_bytes = 64, .ways = 2});
  Cache big({.name = "b", .size_bytes = 64 * 1024, .line_bytes = 64, .ways = 2});
  Xoshiro256 rng(7);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.below(128 * 1024);
    small.access(a);
    big.access(a);
  }
  EXPECT_LE(big.misses(), small.misses());
}

}  // namespace
}  // namespace ramp::sim
