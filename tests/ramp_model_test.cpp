// Tests for the RAMP model facade (per-structure, per-mechanism FIT).
#include "core/ramp_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::core {
namespace {

using scaling::TechPoint;
using sim::StructureId;

TEST(MechanismConstantsTest, GetSetRoundtrip) {
  MechanismConstants k;
  k.set(Mechanism::kEm, 2.0);
  k.set(Mechanism::kTddb, 5.0);
  EXPECT_DOUBLE_EQ(k.get(Mechanism::kEm), 2.0);
  EXPECT_DOUBLE_EQ(k.get(Mechanism::kSm), 1.0);
  EXPECT_DOUBLE_EQ(k.get(Mechanism::kTddb), 5.0);
  EXPECT_THROW(k.set(Mechanism::kTc, -1.0), InvalidArgument);
}

TEST(RampModelTest, ConstantsScaleLinearly) {
  const OperatingPoint op{355.0, 1.3, 0.5};
  const RampModel unit(scaling::base_node());
  MechanismConstants k;
  k.em = 10.0;
  k.sm = 20.0;
  k.tddb = 30.0;
  k.tc = 40.0;
  const RampModel scaled(scaling::base_node(), k);
  EXPECT_NEAR(scaled.em_fit(StructureId::kLsu, op),
              10.0 * unit.em_fit(StructureId::kLsu, op), 1e-12);
  EXPECT_NEAR(scaled.sm_fit(StructureId::kLsu, op),
              20.0 * unit.sm_fit(StructureId::kLsu, op), 1e-12);
  EXPECT_NEAR(scaled.tddb_fit(StructureId::kLsu, op),
              30.0 * unit.tddb_fit(StructureId::kLsu, op) / 1.0, 1e-12);
  EXPECT_NEAR(scaled.tc_fit(350.0), 40.0 * unit.tc_fit(350.0), 1e-12);
}

TEST(RampModelTest, EmUsesActivityTimesJmax) {
  // §2: J = p · J_max. Doubling p must follow the J^n power law.
  const RampModel model(scaling::base_node());
  const OperatingPoint lo{355.0, 1.3, 0.25};
  const OperatingPoint hi{355.0, 1.3, 0.5};
  const double ratio = model.em_fit(StructureId::kFxu, hi) /
                       model.em_fit(StructureId::kFxu, lo);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.1), 1e-9);
}

TEST(RampModelTest, IdleStructureHasZeroEmFit) {
  const RampModel model(scaling::base_node());
  const OperatingPoint idle{355.0, 1.3, 0.0};
  EXPECT_DOUBLE_EQ(model.em_fit(StructureId::kFpu, idle), 0.0);
}

TEST(RampModelTest, StructureWeightsFollowAreaFractions) {
  const RampModel model(scaling::base_node());
  const OperatingPoint op{355.0, 1.3, 0.5};
  const double lsu = model.sm_fit(StructureId::kLsu, op);
  const double bxu = model.sm_fit(StructureId::kBxu, op);
  EXPECT_NEAR(lsu / bxu,
              sim::structure_area_fraction(StructureId::kLsu) /
                  sim::structure_area_fraction(StructureId::kBxu),
              1e-9);
}

TEST(RampModelTest, TddbShrinksWithDieAreaAtFixedConditions) {
  // At identical (T, V, tox), a smaller die has less gate oxide to break.
  const RampModel m180(scaling::base_node());
  const RampModel m65(scaling::node(TechPoint::k65nm_1V0));
  const OperatingPoint op{355.0, 1.0, 0.5};
  // Isolate the area term by comparing against the tox term analytically.
  const double f180 = m180.tddb_fit(StructureId::kLsu, op);
  const double f65 = m65.tddb_fit(StructureId::kLsu, op);
  const double tox_term =
      std::pow(10.0, (2.5 - 0.9) / m180.tddb_model().tox_scale_nm);
  EXPECT_NEAR(f65 / f180, tox_term * 0.16, tox_term * 0.16 * 1e-9);
}

TEST(RampModelTest, EmWorsensWithInterconnectShrink) {
  const RampModel m180(scaling::base_node());
  const RampModel m130(scaling::node(TechPoint::k130nm));
  // Same operating point: only (w·h)_rel and J_max differ.
  const OperatingPoint op{355.0, 1.3, 0.5};
  const double f180 = m180.em_fit(StructureId::kLsu, op);
  const double f130 = m130.em_fit(StructureId::kLsu, op);
  // J term: (0.5·6/0.5·9)^1.1; wh term: 1/0.49.
  const double expected = std::pow(6.0 / 9.0, 1.1) / 0.49;
  EXPECT_NEAR(f130 / f180, expected, 1e-9);
}

TEST(RampModelTest, StructureFitsBundleMatchesIndividualCalls) {
  const RampModel model(scaling::base_node());
  const OperatingPoint op{358.0, 1.3, 0.7};
  const auto fits = model.structure_fits(StructureId::kIfu, op);
  EXPECT_DOUBLE_EQ(fits[static_cast<std::size_t>(Mechanism::kEm)],
                   model.em_fit(StructureId::kIfu, op));
  EXPECT_DOUBLE_EQ(fits[static_cast<std::size_t>(Mechanism::kSm)],
                   model.sm_fit(StructureId::kIfu, op));
  EXPECT_DOUBLE_EQ(fits[static_cast<std::size_t>(Mechanism::kTddb)],
                   model.tddb_fit(StructureId::kIfu, op));
  EXPECT_DOUBLE_EQ(fits[static_cast<std::size_t>(Mechanism::kTc)], 0.0);
}

TEST(RampModelTest, ActivityOutOfRangeThrows) {
  const RampModel model(scaling::base_node());
  EXPECT_THROW(model.em_fit(StructureId::kIfu, {355.0, 1.3, 1.5}),
               InvalidArgument);
}

TEST(RampModelTest, TddbPresetInjectable) {
  const OperatingPoint op{355.0, 1.3, 0.5};
  const RampModel shape(scaling::base_node(), {}, TddbModel::dsn04_shape());
  const RampModel wu(scaling::base_node(), {}, TddbModel::wu2002());
  EXPECT_NE(shape.tddb_fit(StructureId::kLsu, op),
            wu.tddb_fit(StructureId::kLsu, op));
  EXPECT_DOUBLE_EQ(wu.tddb_model().a, 78.0);
}

TEST(RampModelTest, MemoizedFitsMatchMemolessBitwise) {
  // The memoized overloads are the pipeline's hot path; they must reproduce
  // the memo-less results bit for bit across hits, misses, and repeats.
  for (const auto* tech :
       {&scaling::base_node(), &scaling::node(TechPoint::k65nm_1V0)}) {
    MechanismConstants k;
    k.em = 1.7;
    k.sm = 0.3;
    k.tddb = 2.5;
    k.tc = 0.9;
    const RampModel model(*tech, k);
    const double temps[] = {330.0, 330.0, 345.7, 345.7, 361.3, 330.0};
    const double acts[] = {0.0, 0.4, 0.4, 0.7, 0.7, 0.4};
    for (const auto s : sim::kAllStructures) {
      FitMemo memo;
      for (std::size_t i = 0; i < std::size(temps); ++i) {
        const OperatingPoint op{temps[i], tech->vdd, acts[i]};
        const auto slow = model.structure_fits(s, op);
        const auto fast = model.structure_fits(s, op, memo);
        for (int m = 0; m < kNumMechanisms; ++m) {
          const auto mi = static_cast<std::size_t>(m);
          EXPECT_EQ(fast[mi], slow[mi])
              << "mechanism " << m << " at interval " << i;
        }
      }
    }
    FitMemo tc_memo;
    for (const double t : temps) {
      EXPECT_EQ(model.tc_fit(t, tc_memo), model.tc_fit(t));
    }
  }
}

TEST(RampModelTest, MemoizedFitsValidateLikeMemoless) {
  const RampModel model(scaling::base_node());
  FitMemo memo;
  // Out-of-range temperature, bad activity, non-positive voltage: the fast
  // paths must throw the same exception types as the memo-less ones.
  EXPECT_THROW(model.em_fit(StructureId::kIfu, {10.0, 1.3, 0.5}, memo),
               InvalidArgument);
  EXPECT_THROW(model.em_fit(StructureId::kIfu, {355.0, 1.3, 1.5}, memo),
               InvalidArgument);
  EXPECT_THROW(model.sm_fit(StructureId::kIfu, {10.0, 1.3, 0.5}, memo),
               InvalidArgument);
  EXPECT_THROW(model.tddb_fit(StructureId::kIfu, {355.0, 0.0, 0.5}, memo),
               InvalidArgument);
  EXPECT_THROW(model.tddb_fit(StructureId::kIfu, {10.0, 1.3, 0.5}, memo),
               InvalidArgument);
  EXPECT_THROW(model.tc_fit(10.0, memo), InvalidArgument);
  // A failed call must not poison the memo: valid evaluation still matches.
  const OperatingPoint op{355.0, 1.3, 0.5};
  EXPECT_EQ(model.em_fit(StructureId::kIfu, op, memo),
            model.em_fit(StructureId::kIfu, op));
}

// Property sweep over nodes: at a fixed operating point the TC model is
// node-independent (package-level), while EM depends on the node.
class NodeSweepTest : public ::testing::TestWithParam<scaling::TechPoint> {};

TEST_P(NodeSweepTest, TcIsNodeIndependent) {
  const RampModel base(scaling::base_node());
  const RampModel other(scaling::node(GetParam()));
  EXPECT_DOUBLE_EQ(base.tc_fit(350.0), other.tc_fit(350.0));
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeSweepTest,
                         ::testing::ValuesIn(scaling::kAllTechPoints));

}  // namespace
}  // namespace ramp::core
