// Tests for the deterministic RNG and alias-table sampler.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace ramp {
namespace {

TEST(Xoshiro256Test, DeterministicForFixedSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256Test, ReseedRestartsStream) {
  Xoshiro256 a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Xoshiro256Test, BelowIsUnbiased) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(Xoshiro256Test, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, BelowZeroThrows) {
  Xoshiro256 rng(13);
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Xoshiro256Test, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(14);
  const double p = 0.25;
  double sum = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean of the number of failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / draws, 3.0, 0.05);
}

TEST(Xoshiro256Test, GeometricProbabilityOneIsZero) {
  Xoshiro256 rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Xoshiro256Test, GeometricRejectsBadProbability) {
  Xoshiro256 rng(16);
  EXPECT_THROW(rng.geometric(0.0), InvalidArgument);
  EXPECT_THROW(rng.geometric(1.5), InvalidArgument);
}

TEST(Xoshiro256Test, NormalMomentsMatch) {
  Xoshiro256 rng(17);
  double sum = 0, sum2 = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.01);
  EXPECT_NEAR(sum2 / draws, 1.0, 0.02);
}

TEST(Xoshiro256Test, BernoulliRate) {
  Xoshiro256 rng(18);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(AliasTableTest, MatchesWeights) {
  Xoshiro256 rng(19);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(4, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, weights[i] / 10.0, 0.01)
        << "category " << i;
  }
}

TEST(AliasTableTest, ZeroWeightCategoryNeverSampled) {
  Xoshiro256 rng(20);
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table.sample(rng), 1u);
  }
}

TEST(AliasTableTest, SingleCategory) {
  Xoshiro256 rng(21);
  AliasTable table(std::vector<double>{5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), InvalidArgument);
}

TEST(AliasTableTest, SamplingEmptyTableThrows) {
  Xoshiro256 rng(22);
  AliasTable table;
  EXPECT_THROW(table.sample(rng), InvalidArgument);
}

}  // namespace
}  // namespace ramp
