// Tests for the deterministic RNG and alias-table sampler.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace ramp {
namespace {

TEST(Xoshiro256Test, DeterministicForFixedSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256Test, ReseedRestartsStream) {
  Xoshiro256 a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Xoshiro256Test, BelowIsUnbiased) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(Xoshiro256Test, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, BelowZeroThrows) {
  Xoshiro256 rng(13);
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Xoshiro256Test, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(14);
  const double p = 0.25;
  double sum = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean of the number of failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / draws, 3.0, 0.05);
}

TEST(Xoshiro256Test, GeometricProbabilityOneIsZero) {
  Xoshiro256 rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Xoshiro256Test, GeometricRejectsBadProbability) {
  Xoshiro256 rng(16);
  EXPECT_THROW(rng.geometric(0.0), InvalidArgument);
  EXPECT_THROW(rng.geometric(1.5), InvalidArgument);
}

TEST(Xoshiro256Test, NormalMomentsMatch) {
  Xoshiro256 rng(17);
  double sum = 0, sum2 = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.01);
  EXPECT_NEAR(sum2 / draws, 1.0, 0.02);
}

TEST(Xoshiro256Test, BernoulliRate) {
  Xoshiro256 rng(18);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(AliasTableTest, MatchesWeights) {
  Xoshiro256 rng(19);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(4, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, weights[i] / 10.0, 0.01)
        << "category " << i;
  }
}

TEST(AliasTableTest, ZeroWeightCategoryNeverSampled) {
  Xoshiro256 rng(20);
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table.sample(rng), 1u);
  }
}

TEST(AliasTableTest, SingleCategory) {
  Xoshiro256 rng(21);
  AliasTable table(std::vector<double>{5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), InvalidArgument);
}

TEST(AliasTableTest, SamplingEmptyTableThrows) {
  Xoshiro256 rng(22);
  AliasTable table;
  EXPECT_THROW(table.sample(rng), InvalidArgument);
}

// Reference vectors from the published SplitMix64 implementation (Steele,
// Lea & Flood; Vigna's splitmix64.c): pins our generator bit-for-bit.
TEST(SplitMix64Test, MatchesReferenceVectors) {
  SplitMix64 a(0);
  EXPECT_EQ(a(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(a(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(a(), 0x06c45d188009454fULL);
  SplitMix64 b(0x123456789abcdefULL);
  EXPECT_EQ(b(), 0x157a3807a48faa9dULL);
  EXPECT_EQ(b(), 0xd573529b34a1d093ULL);
}

TEST(SplitMix64Test, UniformCoversUnitInterval) {
  SplitMix64 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(StreamSeedTest, DeterministicAndDistinct) {
  // Pure function of (base, stream) — compile-time evaluable.
  static_assert(stream_seed(42, 0) == stream_seed(42, 0));
  EXPECT_EQ(stream_seed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(stream_seed(42, 1), 0x28efe333b266f103ULL);
  EXPECT_NE(stream_seed(42, 0), stream_seed(42, 1));
  EXPECT_NE(stream_seed(42, 0), stream_seed(43, 0));
}

TEST(StreamSeedTest, NoCollisionsAcrossStreams) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t k = 0; k < 5000; ++k) {
      seeds.push_back(stream_seed(base, k));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// Child generators seeded from consecutive streams must behave as
// independent sources: per-bit balance of the seeds themselves, and no
// correlation between the first draws of neighbouring streams.
TEST(StreamSeedTest, StatisticalIndependenceOfChildStreams) {
  constexpr int kStreams = 10000;
  std::array<int, 64> bit_counts{};
  double sum = 0.0;
  double sum_lag = 0.0;
  double prev = 0.5;
  for (int k = 0; k < kStreams; ++k) {
    const std::uint64_t seed = stream_seed(42, static_cast<std::uint64_t>(k));
    for (int b = 0; b < 64; ++b) {
      bit_counts[static_cast<std::size_t>(b)] +=
          static_cast<int>((seed >> b) & 1ULL);
    }
    Xoshiro256 child(seed);
    const double u = child.uniform();
    sum += u;
    sum_lag += (u - 0.5) * (prev - 0.5);
    prev = u;
  }
  // Each seed bit is a fair coin over streams: 5000 ± 5 sigma (sigma = 50).
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(bit_counts[static_cast<std::size_t>(b)], kStreams / 2, 250)
        << "bit " << b;
  }
  EXPECT_NEAR(sum / kStreams, 0.5, 0.015);
  // Lag-1 autocovariance of U(0,1) draws: 0 ± 5 sigma (sigma = 1/(12 sqrt n)).
  EXPECT_NEAR(sum_lag / kStreams, 0.0, 5.0 / (12.0 * std::sqrt(kStreams)));
}

// The Xoshiro256 seed expansion is SplitMix64 (its historical definition):
// locking the first outputs for seed 42 pins the expansion so reseed() and
// the constructor stay bit-compatible with every recorded artifact.
TEST(Xoshiro256Test, SeedExpansionGolden) {
  Xoshiro256 x(42);
  EXPECT_EQ(x(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(x(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(x(), 0xae17533239e499a1ULL);
  EXPECT_EQ(x(), 0xecb8ad4703b360a1ULL);
}

}  // namespace
}  // namespace ramp
