// Tests for floorplan geometry and adjacency.
#include "thermal/floorplan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/structures.hpp"
#include "util/error.hpp"

namespace ramp::thermal {
namespace {

TEST(FloorplanTest, Power4FloorplanHasSevenBlocks) {
  const Floorplan fp = power4_floorplan();
  EXPECT_EQ(fp.size(), 7u);
  EXPECT_NEAR(fp.total_area(), 81e-6, 1e-9);  // 81 mm² in m²
}

TEST(FloorplanTest, BlockAreasMatchStructureFractions) {
  const Floorplan fp = power4_floorplan();
  for (int s = 0; s < sim::kNumStructures; ++s) {
    const auto id = static_cast<sim::StructureId>(s);
    const auto i = fp.index_of(std::string(sim::structure_name(id)));
    EXPECT_NEAR(fp.block(i).area() / fp.total_area(),
                sim::structure_area_fraction(id), 1e-9)
        << sim::structure_name(id);
  }
}

TEST(FloorplanTest, BlocksTileTheDie) {
  const Floorplan fp = power4_floorplan();
  // Bounding box 9 mm × 9 mm and areas sum to the box => tiling.
  double max_x = 0, max_y = 0;
  for (const auto& b : fp.blocks()) {
    max_x = std::max(max_x, b.x + b.w);
    max_y = std::max(max_y, b.y + b.h);
  }
  EXPECT_NEAR(max_x, 9e-3, 1e-9);
  EXPECT_NEAR(max_y, 9e-3, 1e-9);
}

TEST(FloorplanTest, AdjacencyIsSymmetricAndPositive) {
  const Floorplan fp = power4_floorplan();
  const auto adj = fp.adjacencies();
  EXPECT_GE(adj.size(), 6u);  // a 2-row tiling has many shared edges
  for (const auto& a : adj) {
    EXPECT_NE(a.a, a.b);
    EXPECT_GT(a.shared_len, 0.0);
    EXPECT_GT(a.center_dist, 0.0);
  }
}

TEST(FloorplanTest, KnownNeighborsTouch) {
  const Floorplan fp = power4_floorplan();
  const auto lsu = fp.index_of("LSU");
  const auto fxu = fp.index_of("FXU");
  const auto fpu = fp.index_of("FPU");
  bool lsu_fxu = false, lsu_fpu = false;
  for (const auto& a : fp.adjacencies()) {
    if ((a.a == lsu && a.b == fxu) || (a.a == fxu && a.b == lsu)) lsu_fxu = true;
    if ((a.a == lsu && a.b == fpu) || (a.a == fpu && a.b == lsu)) lsu_fpu = true;
  }
  EXPECT_TRUE(lsu_fxu);  // side by side in the bottom row
  EXPECT_TRUE(lsu_fpu);  // stacked across the row boundary
}

TEST(FloorplanTest, ScaledPreservesShape) {
  const Floorplan fp = power4_floorplan();
  const Floorplan half = fp.scaled(0.5);
  EXPECT_NEAR(half.total_area(), fp.total_area() * 0.25, 1e-15);
  // Adjacency ratios shared_len/center_dist are scale-invariant.
  const auto a0 = fp.adjacencies();
  const auto a1 = half.adjacencies();
  ASSERT_EQ(a0.size(), a1.size());
  for (std::size_t i = 0; i < a0.size(); ++i) {
    EXPECT_NEAR(a0[i].shared_len / a0[i].center_dist,
                a1[i].shared_len / a1[i].center_dist, 1e-9);
  }
}

TEST(FloorplanTest, IndexOfUnknownThrows) {
  EXPECT_THROW(power4_floorplan().index_of("GPU"), InvalidArgument);
}

TEST(FloorplanTest, OverlappingBlocksRejected) {
  std::vector<Block> blocks = {{"a", 0, 0, 2, 2}, {"b", 1, 1, 2, 2}};
  EXPECT_THROW(Floorplan{blocks}, InvalidArgument);
}

TEST(FloorplanTest, DegenerateBlockRejected) {
  std::vector<Block> blocks = {{"a", 0, 0, 0, 2}};
  EXPECT_THROW(Floorplan{blocks}, InvalidArgument);
}

TEST(FloorplanTest, TouchingEdgesAreNotOverlap) {
  std::vector<Block> blocks = {{"a", 0, 0, 1, 1}, {"b", 1, 0, 1, 1}};
  EXPECT_NO_THROW(Floorplan{blocks});
}

TEST(FloorplanTest, ScaleMustBePositive) {
  EXPECT_THROW(power4_floorplan().scaled(0.0), InvalidArgument);
}

}  // namespace
}  // namespace ramp::thermal
