// Determinism of the fleet engine under parallel execution (run under TSan
// via the `concurrency` ctest label): `--jobs 1` and `--jobs N` must produce
// byte-identical curves, whether the simulator owns its pool or shares an
// external one, because every chip draws from counter-based substreams of
// (seed, chip index) and block results merge in block order.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet_simulator.hpp"
#include "fleet/scenario.hpp"
#include "util/thread_pool.hpp"

namespace ramp::fleet {
namespace {

FleetScenario small_scenario() {
  FleetScenario sc = FleetScenario::preset("baseline");
  sc.chips = 3000;
  sc.cell.trace_instructions = 2000;
  sc.cell.cache_enabled = false;
  return sc;
}

std::string run_with_jobs(const FleetScenario& sc, std::size_t jobs,
                          std::uint64_t block_size) {
  FleetSimulator::Options opts;
  opts.jobs = jobs;
  opts.block_size = block_size;
  return fleet_curve_csv(FleetSimulator(sc, opts).run());
}

TEST(FleetConcurrencyTest, JobCountNeverChangesTheBytes) {
  const FleetScenario sc = small_scenario();
  const std::string serial = run_with_jobs(sc, 1, 256);
  EXPECT_EQ(serial, run_with_jobs(sc, 4, 256));
  EXPECT_EQ(serial, run_with_jobs(sc, 8, 256));
}

TEST(FleetConcurrencyTest, BlockSizeNeverChangesTheBytes) {
  const FleetScenario sc = small_scenario();
  EXPECT_EQ(run_with_jobs(sc, 4, 64), run_with_jobs(sc, 4, 1024));
}

TEST(FleetConcurrencyTest, SharedExternalPoolMatchesOwnPool) {
  const FleetScenario sc = small_scenario();
  ThreadPool pool(4);
  FleetSimulator::Options opts;
  opts.pool = &pool;
  const std::string shared = fleet_curve_csv(FleetSimulator(sc, opts).run());
  EXPECT_EQ(shared, run_with_jobs(sc, 4, 4096));
  // The same simulator object re-run on the same pool is stable too.
  const FleetSimulator sim(sc, opts);
  EXPECT_EQ(fleet_curve_csv(sim.run()), fleet_curve_csv(sim.run()));
}

TEST(FleetConcurrencyTest, PolicyScenariosAreJobInvariant) {
  for (const char* name : {"attack", "monitor"}) {
    FleetScenario sc = FleetScenario::preset(name);
    sc.chips = 1500;
    sc.cell.trace_instructions = 2000;
    sc.cell.cache_enabled = false;
    EXPECT_EQ(run_with_jobs(sc, 1, 256), run_with_jobs(sc, 4, 256))
        << "scenario " << name;
  }
  FleetScenario sc = small_scenario();
  sc.policy = DrmPolicy::kDvfs;
  sc.drm.fit_budget = 2000.0;
  EXPECT_EQ(run_with_jobs(sc, 1, 256), run_with_jobs(sc, 4, 256));
}

}  // namespace
}  // namespace ramp::fleet
