// Robustness and key-derivation tests for the content-addressed stage
// graph: BlobStore file-format hardening (corrupt / truncated /
// wrong-version / mis-keyed entries read as misses), stage-key invalidation
// properties, codec round trips, and byte-identity of the staged evaluator
// against the monolithic path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/stage_graph.hpp"
#include "pipeline/sweep.hpp"
#include "scaling/technology.hpp"
#include "util/blob_store.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::pipeline {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("ramp_stage_store_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

EvaluationConfig quick_config() {
  EvaluationConfig cfg;
  cfg.trace_instructions = 5'000;
  cfg.cache_enabled = false;
  return cfg;
}

std::string row_of(const AppTechResult& r) {
  std::ostringstream os;
  os.precision(17);
  write_result_row(os, r);
  return os.str();
}

std::shared_ptr<StageStore> make_store(obs::MetricsRegistry* reg,
                                       std::string dir = "") {
  StageStore::Options opts;
  opts.registry = reg;
  opts.dir = std::move(dir);
  return std::make_shared<StageStore>(std::move(opts));
}

std::uint64_t count(obs::MetricsRegistry& reg, const std::string& name) {
  return reg.counter(name).value();
}

// The evaluator's exact key chain for (app, tech) with `cfg`, so tests can
// locate (and corrupt) specific stage files.
struct KeyChain {
  StageKey trace, sim, power, thermal, fit;
};
KeyChain keys_for(const EvaluationConfig& cfg, const std::string& app,
                  scaling::TechPoint point, double sink_target_k = 0.0) {
  const workloads::Workload& w = workloads::workload(app);
  const scaling::TechnologyNode& tech = scaling::node(point);
  KeyChain k;
  k.trace = trace_stage_key(
      TraceStageIn{w.name, w.profile, cfg.trace_instructions, cfg.seed});
  k.sim = sim_stage_key(k.trace, tech.frequency_hz, cfg.interval_seconds);
  k.power = power_stage_key(k.sim, cfg.power, w.power_bias, tech);
  k.thermal = thermal_stage_key(k.power, cfg, tech, sink_target_k);
  k.fit = fit_stage_key(k.thermal, tech);
  return k;
}

// ---- BlobStore file-format hardening ---------------------------------------

TEST(BlobStoreTest, ComputesOnceThenHitsMemory) {
  BlobStore store;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return std::string("payload");
  };
  const auto first = store.get_or_compute("k", compute);
  EXPECT_EQ(first.outcome, BlobStore::Outcome::kComputed);
  EXPECT_EQ(*first.blob, "payload");
  const auto second = store.get_or_compute("k", compute);
  EXPECT_EQ(second.outcome, BlobStore::Outcome::kMemoryHit);
  EXPECT_EQ(second.blob, first.blob);  // shared, not copied
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(store.memory_entries(), 1u);
  EXPECT_EQ(store.memory_bytes(), 7u);
}

TEST(BlobStoreTest, PersistsAndReloadsAcrossStores) {
  TempDir tmp;
  BlobStore::Options opts;
  opts.dir = tmp.path;
  {
    BlobStore store(opts);
    store.get_or_compute("k", [] { return std::string("payload"); });
    ASSERT_TRUE(fs::exists(store.path_for("k")));
  }
  BlobStore fresh(opts);
  bool validated = false;
  const auto res = fresh.get_or_compute(
      "k", [] { return std::string("WRONG"); },
      [&](const std::string& p) {
        validated = true;
        return p == "payload";
      });
  EXPECT_EQ(res.outcome, BlobStore::Outcome::kDiskHit);
  EXPECT_EQ(*res.blob, "payload");
  EXPECT_TRUE(validated);
}

TEST(BlobStoreTest, CorruptFilesReadAsMissesAndGetRewritten) {
  TempDir tmp;
  BlobStore::Options opts;
  opts.dir = tmp.path;
  const std::string good = [&] {
    BlobStore store(opts);
    store.get_or_compute("k", [] { return std::string("payload"); });
    return store.path_for("k");
  }();

  const auto original = [&] {
    std::ifstream in(good, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();

  const auto expect_recompute = [&](const std::string& contents) {
    {
      std::ofstream out(good, std::ios::binary | std::ios::trunc);
      out << contents;
    }
    BlobStore fresh(opts);
    int computes = 0;
    const auto res = fresh.get_or_compute("k", [&] {
      ++computes;
      return std::string("payload");
    });
    EXPECT_EQ(res.outcome, BlobStore::Outcome::kComputed);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(*res.blob, "payload");
    // The miss rewrites the entry, so a further fresh store disk-hits again.
    BlobStore reread(opts);
    EXPECT_EQ(reread.get_or_compute("k", [] { return std::string("x"); })
                  .outcome,
              BlobStore::Outcome::kDiskHit);
  };

  expect_recompute("");                                    // empty file
  expect_recompute(original.substr(0, original.size() / 2));  // truncated
  expect_recompute("garbage\n");                           // no header at all
  {  // wrong format version
    std::string v2 = original;
    v2.replace(v2.find("v1"), 2, "v2");
    expect_recompute(v2);
  }
  {  // byte count inconsistent with the payload
    std::string bad = original;
    bad.replace(bad.find("bytes=7"), 7, "bytes=8");
    expect_recompute(bad);
  }
}

TEST(BlobStoreTest, MisKeyedFileReadsAsMiss) {
  // A digest collision (or a stray rename) puts key A's bytes at key B's
  // path; the verbatim key header must turn that into a miss, not a wrong
  // answer.
  TempDir tmp;
  BlobStore::Options opts;
  opts.dir = tmp.path;
  {
    BlobStore store(opts);
    store.get_or_compute("a", [] { return std::string("payload-a"); });
    fs::copy_file(store.path_for("a"), store.path_for("b"));
  }
  BlobStore fresh(opts);
  const auto res =
      fresh.get_or_compute("b", [] { return std::string("payload-b"); });
  EXPECT_EQ(res.outcome, BlobStore::Outcome::kComputed);
  EXPECT_EQ(*res.blob, "payload-b");
}

TEST(BlobStoreTest, ValidateRejectionRecomputes) {
  TempDir tmp;
  BlobStore::Options opts;
  opts.dir = tmp.path;
  {
    BlobStore store(opts);
    store.get_or_compute("k", [] { return std::string("stale"); });
  }
  BlobStore fresh(opts);
  const auto res = fresh.get_or_compute(
      "k", [] { return std::string("fresh"); },
      [](const std::string&) { return false; });
  EXPECT_EQ(res.outcome, BlobStore::Outcome::kComputed);
  EXPECT_EQ(*res.blob, "fresh");
}

TEST(BlobStoreTest, ComputeExceptionLeavesNoEntry) {
  BlobStore store;
  EXPECT_THROW(store.get_or_compute(
                   "k", []() -> std::string { throw std::runtime_error("x"); }),
               std::runtime_error);
  EXPECT_EQ(store.memory_entries(), 0u);
  const auto res = store.get_or_compute("k", [] { return std::string("ok"); });
  EXPECT_EQ(res.outcome, BlobStore::Outcome::kComputed);
  EXPECT_EQ(*res.blob, "ok");
}

// ---- stage keys ------------------------------------------------------------

TEST(StageKeyTest, VoltageChangeInvalidatesPowerButNotSim) {
  // The paper's 65 nm V/f study: 0.9 V and 1.0 V run the same 2 GHz clock,
  // so trace and sim outputs are shared and only power→thermal→fit re-run.
  const EvaluationConfig cfg = quick_config();
  const KeyChain lo = keys_for(cfg, "gcc", scaling::TechPoint::k65nm_0V9);
  const KeyChain hi = keys_for(cfg, "gcc", scaling::TechPoint::k65nm_1V0);
  EXPECT_EQ(lo.trace.canonical, hi.trace.canonical);
  EXPECT_EQ(lo.sim.canonical, hi.sim.canonical);
  EXPECT_NE(lo.power.canonical, hi.power.canonical);
  EXPECT_NE(lo.thermal.canonical, hi.thermal.canonical);
  EXPECT_NE(lo.fit.canonical, hi.fit.canonical);
}

TEST(StageKeyTest, UpstreamChangesCascadeDownstream) {
  EvaluationConfig cfg = quick_config();
  const KeyChain base = keys_for(cfg, "gcc", scaling::TechPoint::k180nm);

  // A different app changes everything from the trace on down.
  const KeyChain other_app = keys_for(cfg, "mesa", scaling::TechPoint::k180nm);
  EXPECT_NE(base.trace.canonical, other_app.trace.canonical);
  EXPECT_NE(base.fit.canonical, other_app.fit.canonical);

  // Seed feeds the trace stage; every downstream key embeds it.
  cfg.seed += 1;
  const KeyChain reseeded = keys_for(cfg, "gcc", scaling::TechPoint::k180nm);
  EXPECT_NE(base.trace.canonical, reseeded.trace.canonical);
  EXPECT_NE(base.sim.canonical, reseeded.sim.canonical);
  EXPECT_NE(base.fit.canonical, reseeded.fit.canonical);
  cfg.seed -= 1;

  // The sink target feeds thermal calibration only: power and above reuse.
  const KeyChain pinned =
      keys_for(cfg, "gcc", scaling::TechPoint::k180nm, 360.0);
  EXPECT_EQ(base.power.canonical, pinned.power.canonical);
  EXPECT_NE(base.thermal.canonical, pinned.thermal.canonical);
  EXPECT_NE(base.fit.canonical, pinned.fit.canonical);

  // Keys embed their upstream key verbatim — no digest chaining.
  EXPECT_NE(base.sim.canonical.find(base.trace.canonical), std::string::npos);
  EXPECT_NE(base.fit.canonical.find(base.thermal.canonical),
            std::string::npos);
}

// ---- codecs ----------------------------------------------------------------

TEST(StageCodecTest, PowerPayloadRoundTripsBitExactly) {
  PowerStageOut v;
  for (double& d : v.avg_dynamic) d = 0.1 + d;
  v.dynamic.resize(3);
  v.dynamic[1][2] = 1.0 / 3.0;
  v.dynamic_total = {0.25, -0.0, 6.02214076e23};
  const std::string payload = encode_payload(v);
  PowerStageOut back;
  ASSERT_TRUE(decode_payload(payload, back));
  EXPECT_EQ(back.dynamic.size(), 3u);
  for (std::size_t i = 0; i < v.avg_dynamic.size(); ++i) {
    EXPECT_EQ(back.avg_dynamic[i], v.avg_dynamic[i]);
  }
  EXPECT_EQ(back.dynamic[1][2], 1.0 / 3.0);
  ASSERT_EQ(back.dynamic_total.size(), 3u);
  EXPECT_EQ(back.dynamic_total[2], 6.02214076e23);
  EXPECT_TRUE(std::signbit(back.dynamic_total[1]));  // -0.0 preserved
}

TEST(StageCodecTest, DecodeRejectsCorruptPayloads) {
  ThermalStageOut v;
  v.sink_temp_k = 345.0;
  v.struct_temps.resize(2);
  v.block_total = {1.0, 2.0};
  const std::string payload = encode_payload(v);

  ThermalStageOut out;
  EXPECT_TRUE(decode_payload(payload, out));
  EXPECT_FALSE(decode_payload(payload.substr(0, payload.size() - 1), out));
  EXPECT_FALSE(decode_payload(payload + "x", out));
  EXPECT_FALSE(decode_payload(std::string(), out));
  std::string wrong_magic = payload;
  wrong_magic[0] ^= 0x5a;
  EXPECT_FALSE(decode_payload(wrong_magic, out));
  // A corrupt interval count must fail the size check, not attempt a
  // matching (potentially enormous) resize.
  std::string huge_count = payload;
  huge_count[8] = '\xff';  // low byte of the first u64 count
  EXPECT_FALSE(decode_payload(huge_count, out));
  // Payloads of one stage must not decode as another.
  SimStageOut sim;
  EXPECT_FALSE(decode_payload(payload, sim));
}

// ---- StageStore end to end -------------------------------------------------

TEST(StageStoreTest, StagedMatchesMonolithicByteForByte) {
  const EvaluationConfig cfg = quick_config();
  const Evaluator mono(cfg);
  obs::MetricsRegistry reg(true);
  const Evaluator staged(cfg, make_store(&reg));
  const workloads::Workload& w = workloads::workload("gcc");
  for (const auto point :
       {scaling::TechPoint::k180nm, scaling::TechPoint::k65nm_1V0}) {
    const std::string expect = row_of(mono.evaluate(w, point));
    EXPECT_EQ(row_of(staged.evaluate(w, point)), expect);  // cold
    EXPECT_EQ(row_of(staged.evaluate(w, point)), expect);  // warm
  }
}

TEST(StageStoreTest, SecondVfPointSkipsTraceAndSim) {
  // The headline reuse property: after gcc@65-0.9, evaluating gcc@65-1.0
  // answers the sim stage from the store and never touches the trace stage.
  const EvaluationConfig cfg = quick_config();
  obs::MetricsRegistry reg(true);
  const Evaluator ev(cfg, make_store(&reg));
  const workloads::Workload& w = workloads::workload("gcc");

  ev.evaluate(w, scaling::TechPoint::k65nm_0V9);
  EXPECT_EQ(count(reg, "ramp_stage_trace_misses_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_sim_misses_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_fit_misses_total"), 1u);

  ev.evaluate(w, scaling::TechPoint::k65nm_1V0);
  EXPECT_EQ(count(reg, "ramp_stage_sim_hits_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_sim_misses_total"), 1u);
  // A sim hit short-circuits its compute lambda, so the trace stage is
  // never even looked up — zero hits, still one miss.
  EXPECT_EQ(count(reg, "ramp_stage_trace_hits_total"), 0u);
  EXPECT_EQ(count(reg, "ramp_stage_trace_misses_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_power_misses_total"), 2u);
  EXPECT_EQ(count(reg, "ramp_stage_thermal_misses_total"), 2u);
  EXPECT_EQ(count(reg, "ramp_stage_fit_misses_total"), 2u);
}

TEST(StageStoreTest, WarmPersistentStoreAnswersFromFitAlone) {
  TempDir tmp;
  const EvaluationConfig cfg = quick_config();
  const workloads::Workload& w = workloads::workload("gcc");
  std::string cold_row;
  {
    obs::MetricsRegistry reg(true);
    const Evaluator ev(cfg, make_store(&reg, tmp.path));
    cold_row = row_of(ev.evaluate(w, scaling::TechPoint::k180nm));
    EXPECT_EQ(count(reg, "ramp_stage_fit_writes_total"), 1u);
    EXPECT_EQ(count(reg, "ramp_stage_sim_writes_total"), 1u);
  }
  // A fresh process (fresh store, fresh registry) disk-hits the fit row and
  // pulls nothing upstream — the lazy getters never fire.
  obs::MetricsRegistry reg(true);
  const Evaluator ev(cfg, make_store(&reg, tmp.path));
  EXPECT_EQ(row_of(ev.evaluate(w, scaling::TechPoint::k180nm)), cold_row);
  EXPECT_EQ(count(reg, "ramp_stage_fit_hits_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_fit_misses_total"), 0u);
  for (const char* stage : {"trace", "sim", "power", "thermal"}) {
    EXPECT_EQ(count(reg, "ramp_stage_" + std::string(stage) + "_hits_total"),
              0u)
        << stage;
    EXPECT_EQ(count(reg, "ramp_stage_" + std::string(stage) + "_misses_total"),
              0u)
        << stage;
  }
  EXPECT_EQ(count(reg, "ramp_stage_fit_writes_total"), 0u);
}

TEST(StageStoreTest, CorruptStageFileFallsBackToUpstreamHits) {
  TempDir tmp;
  const EvaluationConfig cfg = quick_config();
  const workloads::Workload& w = workloads::workload("gcc");
  const KeyChain keys = keys_for(cfg, "gcc", scaling::TechPoint::k180nm);
  std::string cold_row;
  std::string fit_path;
  {
    obs::MetricsRegistry reg(true);
    const auto store = make_store(&reg, tmp.path);
    const Evaluator ev(cfg, store);
    cold_row = row_of(ev.evaluate(w, scaling::TechPoint::k180nm));
    fit_path = store->blobs().path_for(keys.fit.canonical);
    ASSERT_TRUE(fs::exists(fit_path));
  }
  // Corrupt the fit payload's magic but keep the blob header intact: the
  // codec (not the file parser) must reject it, and the recompute should
  // disk-hit the intact thermal stage instead of redoing the pipeline.
  {
    std::ifstream in(fit_path, std::ios::binary);
    std::string contents(std::istreambuf_iterator<char>(in), {});
    in.close();
    std::size_t payload_at = 0;
    for (int nl = 0; nl < 3; ++nl) payload_at = contents.find('\n', payload_at) + 1;
    ASSERT_LT(payload_at + 8, contents.size());
    for (int i = 0; i < 8; ++i) contents[payload_at + i] ^= 0x5a;
    std::ofstream out(fit_path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  obs::MetricsRegistry reg(true);
  const Evaluator ev(cfg, make_store(&reg, tmp.path));
  EXPECT_EQ(row_of(ev.evaluate(w, scaling::TechPoint::k180nm)), cold_row);
  EXPECT_EQ(count(reg, "ramp_stage_fit_misses_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_thermal_hits_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_sim_hits_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_sim_misses_total"), 0u);
  EXPECT_EQ(count(reg, "ramp_stage_fit_writes_total"), 1u);  // re-persisted
}

TEST(StageStoreTest, RecorderRunsBypassFitCacheButReuseUpstream) {
  EvaluationConfig cfg = quick_config();
  cfg.record_intervals = true;
  obs::MetricsRegistry reg(true);
  const Evaluator ev(cfg, make_store(&reg));
  const workloads::Workload& w = workloads::workload("gcc");

  const auto first = ev.evaluate(w, scaling::TechPoint::k180nm);
  const auto second = ev.evaluate(w, scaling::TechPoint::k180nm);
  // Interval traces are not representable in the fit payload, so recorder
  // runs never consult the fit cache — but both runs carry the trace, and
  // the second reuses every upstream stage.
  EXPECT_FALSE(first.interval_trace.empty());
  EXPECT_EQ(second.interval_trace.size(), first.interval_trace.size());
  EXPECT_EQ(count(reg, "ramp_stage_fit_hits_total"), 0u);
  EXPECT_EQ(count(reg, "ramp_stage_fit_misses_total"), 0u);
  EXPECT_EQ(count(reg, "ramp_stage_thermal_hits_total"), 1u);
  EXPECT_EQ(count(reg, "ramp_stage_thermal_misses_total"), 1u);
  EXPECT_EQ(row_of(first), row_of(second));
}

}  // namespace
}  // namespace ramp::pipeline
