// Threaded EvalService tests (ctest label: concurrency; run them from a
// -DRAMP_SANITIZE=thread build). The acceptance bar: N concurrent identical
// requests run the pipeline exactly once — every caller shares the single
// in-flight computation (single-flight coalescing).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/evaluator.hpp"
#include "pipeline/sweep.hpp"
#include "scaling/technology.hpp"
#include "serve/eval_service.hpp"
#include "serve/request.hpp"
#include "util/thread_pool.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::serve {
namespace {

pipeline::EvaluationConfig tiny_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 3'000;
  return cfg;
}

EvalRequest eval_req(const std::string& app, const std::string& node) {
  EvalRequest req;
  req.app = app;
  req.node = scaling::parse_tech(node);
  return req;
}

std::string row(const pipeline::AppTechResult& r) {
  std::ostringstream os;
  os.precision(17);
  pipeline::write_result_row(os, r);
  return os.str();
}

TEST(ServeConcurrencyTest, IdenticalRequestsEvaluateExactlyOnce) {
  constexpr int kThreads = 8;
  EvalService::Options opts;
  opts.jobs = 2;
  EvalService service(tiny_config(), opts);

  // 180 nm needs no pinned base run, so "exactly one evaluation" is exact.
  const EvalRequest req = eval_req("gcc", "180");
  std::vector<OutcomePtr> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { outcomes[static_cast<std::size_t>(i)] = service.evaluate(req); });
  }
  for (auto& t : threads) t.join();
  service.drain();  // quiesce: futures fire before the pool task's
                    // bookkeeping, so queue_depth needs the barrier

  // Every caller got the one shared outcome object.
  for (const auto& outcome : outcomes) {
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(outcome.get(), outcomes.front().get());
  }
  const auto s = service.stats();
  EXPECT_EQ(s.requests, 8u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.hits + s.coalesced, 7u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeConcurrencyTest, DistinctRequestsAllCompleteCorrectly) {
  const std::vector<std::string> apps = {"gcc", "twolf", "gzip", "vpr"};
  EvalService::Options opts;
  opts.jobs = 2;
  EvalService service(tiny_config(), opts);

  std::vector<OutcomePtr> outcomes(apps.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    threads.emplace_back(
        [&, i] { outcomes[i] = service.evaluate(eval_req(apps[i], "180")); });
  }
  for (auto& t : threads) t.join();
  service.drain();

  const pipeline::Evaluator direct(tiny_config());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    ASSERT_NE(outcomes[i], nullptr) << apps[i];
    EXPECT_EQ(row(outcomes[i]->result),
              row(direct.evaluate(workloads::workload(apps[i]),
                                  scaling::TechPoint::k180nm)))
        << apps[i];
  }
  const auto s = service.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evaluations, 4u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeConcurrencyTest, BackpressureBoundsTheQueueWithoutDeadlock) {
  EvalService::Options opts;
  opts.jobs = 1;
  opts.max_pending = 1;
  EvalService service(tiny_config(), opts);

  const std::vector<std::string> apps = {"gcc", "twolf", "gzip"};
  std::vector<EvalService::Ticket> tickets;
  for (const auto& app : apps) {
    // With max_pending = 1 each submit blocks until the previous key
    // finished; queue depth can never exceed the bound.
    tickets.push_back(service.submit(eval_req(app, "180")));
    EXPECT_LE(service.stats().queue_depth, 1u);
  }
  for (auto& t : tickets) EXPECT_NE(t.future.get(), nullptr);
  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeConcurrencyTest, MixedKeysUnderContentionStayDeterministic) {
  // 8 threads × 4 requests over a small key space, with sink pinning in
  // play: a TSan-friendly stress of the LRU + inflight + base-reuse paths.
  const std::vector<std::string> apps = {"gcc", "twolf"};
  const std::vector<std::string> nodes = {"180", "90"};
  EvalService::Options opts;
  opts.jobs = 2;
  EvalService service(tiny_config(), opts);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        const auto& app = apps[static_cast<std::size_t>((t + i) % 2)];
        const auto& node = nodes[static_cast<std::size_t>(i % 2)];
        if (service.evaluate(eval_req(app, node)) == nullptr) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  service.drain();
  EXPECT_EQ(failures.load(), 0);

  // Whatever the interleaving, cached answers must match a fresh direct run.
  const pipeline::Evaluator direct(tiny_config());
  for (const auto& app : apps) {
    const auto& w = workloads::workload(app);
    const auto base = direct.evaluate(w, scaling::TechPoint::k180nm);
    const auto scaled =
        direct.evaluate(w, scaling::TechPoint::k90nm, base.sink_temp_k);
    EXPECT_EQ(row(service.evaluate(eval_req(app, "180"))->result), row(base));
    EXPECT_EQ(row(service.evaluate(eval_req(app, "90"))->result), row(scaled));
  }
  const auto s = service.stats();
  EXPECT_EQ(s.requests, 36u);  // 32 threaded + 4 verification lookups
  EXPECT_EQ(s.misses, 4u);     // one per distinct key
  // Two workers may race the same uncached 180 nm base inline (both compute
  // identical results), so the evaluation count has a small legal range.
  EXPECT_GE(s.evaluations, 4u);
  EXPECT_LE(s.evaluations, 6u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(ServeConcurrencyTest, SharedExternalPoolIsReusable) {
  ThreadPool pool(2);
  EvalService::Options opts;
  opts.pool = &pool;
  {
    EvalService service(tiny_config(), opts);
    EXPECT_NE(service.evaluate(eval_req("gcc", "180")), nullptr);
  }
  // The service drained on destruction; the pool must still be usable.
  EvalService second(tiny_config(), opts);
  EXPECT_NE(second.evaluate(eval_req("twolf", "180")), nullptr);
}

}  // namespace
}  // namespace ramp::serve
