// net::Server behavior tests over real sockets: the TCP front-end speaks
// exactly the stdio NDJSON dialect (eval responses byte-identical modulo
// cache-provenance flags), pipelined responses keep request order, bad
// input degrades to error responses (never a dropped connection), admission
// control sheds with explicit `overloaded` responses instead of queueing
// without bound, and graceful drain answers everything it accepted —
// counters prove nothing accepted is ever silently lost.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "net_tcp_client.hpp"
#include "obs/reqtrace.hpp"
#include "pipeline/evaluator.hpp"
#include "serve/eval_service.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace ramp::net {
namespace {

using testing::LineClient;

pipeline::EvaluationConfig tiny_config() {
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 3'000;
  return cfg;
}

/// A server on its own thread; terminate() uses a throwaway client's
/// `shutdown` op, so every test also exercises the drain path.
struct RunningServer {
  explicit RunningServer(serve::EvalService& service,
                         ServerOptions opts = {}) {
    server = std::make_unique<Server>(service, std::move(opts));
    thread = std::thread([this] { rc = server->run(); });
  }
  ~RunningServer() {
    if (thread.joinable()) {
      terminate();
      thread.join();
    }
  }
  std::uint16_t port() const { return server->port(); }
  void terminate() {
    if (done) return;
    done = true;
    try {
      LineClient quit(port());
      quit.send(R"({"op":"shutdown"})");
      quit.recv_line();
    } catch (const std::exception&) {
      // already draining (another client's shutdown beat us): fine
    }
  }
  int join() {
    terminate();
    thread.join();
    return rc;
  }

  std::unique_ptr<Server> server;
  std::thread thread;
  int rc = -1;
  bool done = false;
};

/// Response with the cache-provenance flags (`cached`, `coalesced`) forced
/// false: those legitimately differ between a fresh stdio service and a TCP
/// server that already saw the key — everything else must match bytewise.
std::string normalized(const std::string& line) {
  const serve::Json parsed = serve::Json::parse(line);
  serve::Json out = serve::Json::object();
  for (const auto& [key, value] : parsed.items()) {
    if (key == "cached" || key == "coalesced") {
      out.set(key, serve::Json(false));
    } else {
      out.set(key, value);
    }
  }
  return out.dump();
}

/// The stdio answer for one request line, from a fresh service with the
/// same config — the reference the TCP path must reproduce.
std::string stdio_answer(const std::string& line) {
  serve::EvalService service(tiny_config(), {});
  std::istringstream in(line + "\n");
  std::ostringstream out;
  EXPECT_EQ(serve::serve_loop(in, out, service), 0);
  std::string text = out.str();
  EXPECT_FALSE(text.empty());
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

TEST(NetServerTest, EvalResponseIsByteIdenticalToStdio) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  const std::string req =
      R"({"op":"eval","app":"gcc","node":"90","id":7})";
  LineClient client(rs.port());
  ASSERT_TRUE(client.send(req));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(normalized(*reply), normalized(stdio_answer(req)));
}

TEST(NetServerTest, PipelinedResponsesKeepRequestOrder) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  const std::vector<std::string> apps = {"gcc", "gzip", "twolf", "crafty"};
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.send(R"({"op":"eval","app":")" + apps[i % 4] +
                            R"(","node":"130","id":)" + std::to_string(i) +
                            "}"));
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value()) << "response " << i << " missing";
    const serve::Json j = serve::Json::parse(*reply);
    ASSERT_NE(j.find("id"), nullptr);
    EXPECT_EQ(static_cast<int>(j.find("id")->as_number()), i)
        << "responses out of order";
    EXPECT_TRUE(j.find("ok")->as_bool());
  }
}

TEST(NetServerTest, ControlOpsInterleaveInOrderWithEvals) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  ASSERT_TRUE(client.send(R"({"op":"eval","app":"gcc","node":"90"})"));
  ASSERT_TRUE(client.send(R"({"op":"stats"})"));
  ASSERT_TRUE(client.send(R"({"op":"metrics"})"));

  const auto r1 = client.recv_line(), r2 = client.recv_line(),
             r3 = client.recv_line();
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(serve::Json::parse(*r1).find("op")->as_string(), "eval");
  EXPECT_EQ(serve::Json::parse(*r2).find("op")->as_string(), "stats");
  EXPECT_EQ(serve::Json::parse(*r3).find("op")->as_string(), "metrics");
  // The stats snapshot taken *after* the eval answered must have seen it.
  const serve::Json stats = serve::Json::parse(*r2);
  ASSERT_NE(stats.find("stats"), nullptr) << *r2;
  ASSERT_NE(stats.find("stats")->find("requests"), nullptr) << *r2;
  EXPECT_GE(stats.find("stats")->find("requests")->as_number(), 1.0);
}

TEST(NetServerTest, FleetOpRunsOverTcp) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  ASSERT_TRUE(client.send(
      R"({"op":"fleet","scenario":"baseline","chips":64,"years":6,"bin":2,"seed":1})"));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  const serve::Json j = serve::Json::parse(*reply);
  ASSERT_NE(j.find("ok"), nullptr) << *reply;
  EXPECT_TRUE(j.find("ok")->as_bool()) << *reply;
  EXPECT_EQ(j.find("op")->as_string(), "fleet");
  ASSERT_NE(j.find("summary"), nullptr);
  EXPECT_EQ(j.find("summary")->find("chips")->as_number(), 64.0);
  ASSERT_NE(j.find("curve"), nullptr);
  EXPECT_EQ(j.find("curve")->elements().size(), 3u);  // 6y / 2y bins
}

TEST(NetServerTest, ParseErrorAnswersButKeepsConnection) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  ASSERT_TRUE(client.send("{this is not json"));
  const auto err = client.recv_line();
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(serve::Json::parse(*err).find("ok")->as_bool());

  // The connection survives and serves real work afterwards.
  ASSERT_TRUE(client.send(R"({"op":"eval","app":"gcc","node":"180"})"));
  const auto good = client.recv_line();
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(serve::Json::parse(*good).find("ok")->as_bool());
}

TEST(NetServerTest, OversizeLineRejectedWithoutKillingConnection) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  // One byte past the cap; garbage content never reaches the parser.
  std::string huge(serve::kMaxRequestLine + 1, 'x');
  ASSERT_TRUE(client.send(huge));
  const auto err = client.recv_line();
  ASSERT_TRUE(err.has_value());
  const serve::Json j = serve::Json::parse(*err);
  EXPECT_FALSE(j.find("ok")->as_bool());
  EXPECT_NE(j.find("error")->as_string().find("exceeds"), std::string::npos)
      << *err;

  ASSERT_TRUE(client.send(R"({"op":"eval","app":"gzip","node":"130"})"));
  const auto good = client.recv_line();
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(serve::Json::parse(*good).find("ok")->as_bool());
}

TEST(NetServerTest, ConnectionCapRejectsWithOverloadedLine) {
  serve::EvalService service(tiny_config(), {});
  ServerOptions opts;
  opts.max_connections = 1;
  RunningServer rs(service, opts);

  LineClient first(rs.port());
  ASSERT_TRUE(first.send(R"({"op":"stats"})"));
  ASSERT_TRUE(first.recv_line().has_value());  // first client is in

  LineClient second(rs.port());
  const auto reply = second.recv_line();  // rejected: one line, then EOF
  ASSERT_TRUE(reply.has_value());
  const serve::Json j = serve::Json::parse(*reply);
  EXPECT_FALSE(j.find("ok")->as_bool());
  ASSERT_NE(j.find("overloaded"), nullptr);
  EXPECT_TRUE(j.find("overloaded")->as_bool());
  EXPECT_FALSE(second.recv_line().has_value());  // closed after the line

  // Shut down through the admitted client: a fresh terminate() client
  // would itself bounce off the 1-connection cap.
  ASSERT_TRUE(first.send(R"({"op":"shutdown"})"));
  first.recv_line();
  rs.done = true;
  rs.thread.join();
  EXPECT_GE(rs.server->counters().rejected_connections, 1u);
}

TEST(NetServerTest, QueueCapShedsWithOverloadedNotUnboundedQueue) {
  serve::EvalService::Options sopts;
  sopts.jobs = 1;
  serve::EvalService service(tiny_config(), sopts);
  ServerOptions opts;
  opts.max_queued_requests = 2;
  RunningServer rs(service, opts);

  LineClient client(rs.port());
  // Distinct keys (trace_len varies) so nothing coalesces or hits cache;
  // with a 2-deep queue most of these must shed.
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.send(
        R"({"op":"eval","app":"gcc","node":"90","trace_len":)" +
        std::to_string(2'000 + i) + R"(,"id":)" + std::to_string(i) + "}"));
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value()) << "response " << i << " missing";
    const serve::Json j = serve::Json::parse(*reply);
    EXPECT_EQ(static_cast<int>(j.find("id")->as_number()), i);
    if (j.find("ok")->as_bool()) {
      ok++;
    } else {
      ASSERT_NE(j.find("overloaded"), nullptr) << *reply;
      overloaded++;
    }
  }
  EXPECT_GE(ok, 1) << "admission control must not shed everything";
  EXPECT_GE(overloaded, 1) << "a 2-deep queue cannot absorb 24 requests";
  EXPECT_EQ(ok + overloaded, kRequests) << "every request got an answer";

  rs.terminate();
  rs.thread.join();
  EXPECT_EQ(rs.server->counters().shed_requests,
            static_cast<std::uint64_t>(overloaded));
}

TEST(NetServerTest, ShutdownOpDrainsAndAccountsForEverything) {
  serve::EvalService service(tiny_config(), {});
  auto rs = std::make_unique<RunningServer>(service);

  LineClient client(rs->port());
  ASSERT_TRUE(client.send(R"({"op":"eval","app":"twolf","node":"65-1.0"})"));
  ASSERT_TRUE(client.send(R"({"op":"shutdown"})"));
  // Both answers arrive — the in-flight eval is not abandoned — then EOF.
  const auto eval = client.recv_line();
  ASSERT_TRUE(eval.has_value());
  EXPECT_TRUE(serve::Json::parse(*eval).find("ok")->as_bool());
  const auto bye = client.recv_line();
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(serve::Json::parse(*bye).find("op")->as_string(), "shutdown");
  EXPECT_FALSE(client.recv_line().has_value());

  rs->done = true;  // shutdown already sent
  rs->thread.join();
  EXPECT_EQ(rs->rc, 0);
  const ServerCounters& c = rs->server->counters();
  EXPECT_EQ(c.responses_sent + c.dropped_responses, c.accepted_requests);
  EXPECT_EQ(c.dropped_responses, 0u);
}

TEST(NetServerTest, DrainFlagStopsAnIdleServer) {
  static volatile std::sig_atomic_t flag;
  flag = 0;
  serve::EvalService service(tiny_config(), {});
  ServerOptions opts;
  opts.drain_flag = &flag;
  Server server(service, opts);
  std::thread t([&] { server.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  serve::request_drain(&flag);  // as the SIGTERM handler would
  t.join();  // run() noticed within its 100 ms poll tick
  SUCCEED();
}

TEST(NetServerTest, FireAndForgetClientStillHasRequestAccepted) {
  serve::EvalService service(tiny_config(), {});
  auto rs = std::make_unique<RunningServer>(service);

  {
    // Write a request and vanish without reading the answer: the server
    // must still read the socket to EOF and accept the buffered line.
    LineClient ephemeral(rs->port());
    ASSERT_TRUE(
        ephemeral.send(R"({"op":"eval","app":"gcc","node":"180"})"));
    ephemeral.close();
  }
  // Give the loop a beat to process the hangup before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  EXPECT_EQ(rs->join(), 0);
  const ServerCounters& c = rs->server->counters();
  EXPECT_GE(c.accepted_requests, 2u);  // the orphan + the shutdown
  // The orphan's answer either reached the kernel buffer of the dead
  // socket (sent) or the connection died first (dropped) — timing decides
  // which, but the accounting must balance either way.
  EXPECT_EQ(c.responses_sent + c.dropped_responses, c.accepted_requests);
}

TEST(NetServerTest, HealthReportsTransportState) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  ASSERT_TRUE(client.send(R"({"op":"health","id":"h1"})"));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  const serve::Json j = serve::Json::parse(*reply);
  EXPECT_TRUE(j.find("ok")->as_bool());
  EXPECT_EQ(j.find("op")->as_string(), "health");
  EXPECT_EQ(j.find("id")->as_string(), "h1");
  EXPECT_EQ(j.find("mode")->as_string(), "tcp");
  EXPECT_GE(j.find("uptime_s")->as_number(), 0.0);
  EXPECT_GE(j.find("accepted_connections")->as_number(), 1.0);
  EXPECT_GE(j.find("active_connections")->as_number(), 1.0);
  EXPECT_FALSE(j.find("draining")->as_bool());
  EXPECT_EQ(j.find("shards")->as_number(), 1.0);
}

TEST(NetServerTest, TraceFlagAttachesPhaseBreakdownToThatResponseOnly) {
  serve::EvalService service(tiny_config(), {});
  RunningServer rs(service);

  LineClient client(rs.port());
  // Untraced request: no trace object, even for the same key.
  ASSERT_TRUE(client.send(R"({"op":"eval","app":"gcc","node":"90","id":1})"));
  const auto plain = client.recv_line();
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(serve::Json::parse(*plain).find("trace"), nullptr);

  ASSERT_TRUE(client.send(
      R"({"op":"eval","app":"gcc","node":"90","id":2,"trace":true,)"
      R"("trace_id":"req-42"})"));
  const auto traced = client.recv_line();
  ASSERT_TRUE(traced.has_value());
  const serve::Json j = serve::Json::parse(*traced);
  EXPECT_TRUE(j.find("ok")->as_bool());
  const serve::Json* t = j.find("trace");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->find("trace_id")->as_string(), "req-42");
  EXPECT_EQ(t->find("op")->as_string(), "eval");
  EXPECT_EQ(t->find("label")->as_string(), "gcc@90");
  EXPECT_GT(t->find("total_ns")->as_number(), 0.0);
  EXPECT_TRUE(t->find("cached")->as_bool());  // id 1 warmed the key
  const serve::Json* phases = t->find("phases");
  ASSERT_NE(phases, nullptr);
  int n = 0;
  double sum = 0.0;
  for (const auto& [name, ns] : phases->items()) {
    (void)name;
    sum += ns.as_number();
    ++n;
  }
  EXPECT_EQ(n, obs::kNumPhases);
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, t->find("total_ns")->as_number());

  // The traced response is the plain one plus the trace object.
  serve::Json stripped = serve::Json::object();
  for (const auto& [key, value] : j.items()) {
    if (key != "trace" && key != "id" && key != "cached") {
      stripped.set(key, value);
    }
  }
  serve::Json reference = serve::Json::object();
  const serve::Json plain_doc = serve::Json::parse(*plain);
  for (const auto& [key, value] : plain_doc.items()) {
    if (key != "id" && key != "cached") reference.set(key, value);
  }
  EXPECT_EQ(stripped.dump(), reference.dump());
}

TEST(NetServerTest, TraceDumpReturnsRecentRequestsAsPerfetto) {
  serve::EvalService service(tiny_config(), {});
  ServerOptions opts;
  opts.request_trace = true;
  RunningServer rs(service, opts);

  LineClient client(rs.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send(R"({"op":"eval","app":"gzip","node":"130","id":)" +
                            std::to_string(i) + "}"));
    ASSERT_TRUE(client.recv_line().has_value());
  }
  ASSERT_TRUE(client.send(R"({"op":"trace_dump","id":"d"})"));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  const serve::Json j = serve::Json::parse(*reply);
  EXPECT_TRUE(j.find("ok")->as_bool());
  EXPECT_EQ(j.find("op")->as_string(), "trace_dump");
  EXPECT_EQ(j.find("id")->as_string(), "d");
  EXPECT_GE(j.find("count")->as_number(), 3.0);
  EXPECT_EQ(j.find("capacity")->as_number(), 512.0);
  EXPECT_GE(j.find("total_traced")->as_number(), 3.0);
  const std::string perfetto = j.find("perfetto")->as_string();
  EXPECT_NE(perfetto.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(perfetto.find("requests-lane-0"), std::string::npos);
}

TEST(NetServerTest, SlowLogWithZeroThresholdCapturesEveryTracedRequest) {
  const std::string path =
      ::testing::TempDir() + "ramp_net_server_slow_test.ndjson";
  std::remove(path.c_str());
  {
    serve::EvalService service(tiny_config(), {});
    ServerOptions opts;
    opts.request_trace = true;
    opts.slow_log_path = path;
    opts.slow_ms = 0.0;
    RunningServer rs(service, opts);

    LineClient client(rs.port());
    ASSERT_TRUE(
        client.send(R"({"op":"eval","app":"crafty","node":"180","id":1})"));
    ASSERT_TRUE(client.recv_line().has_value());
    ASSERT_TRUE(
        client.send(R"({"op":"eval","app":"crafty","node":"180","id":2})"));
    ASSERT_TRUE(client.recv_line().has_value());
    EXPECT_EQ(rs.join(), 0);  // drain flushes the log
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const serve::Json j = serve::Json::parse(line);
    EXPECT_EQ(j.find("op")->as_string(), "eval");
    EXPECT_EQ(j.find("label")->as_string(), "crafty@180");
    ASSERT_NE(j.find("phases"), nullptr);
    EXPECT_GE(j.find("total_ns")->as_number(), 0.0);
    ++lines;
  }
  EXPECT_GE(lines, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ramp::net
