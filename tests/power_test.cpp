// Tests for the power model.
#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::power {
namespace {

using sim::idx;
using sim::kNumStructures;
using sim::StructureId;

std::array<double, kNumStructures> uniform_activity(double a) {
  std::array<double, kNumStructures> act{};
  act.fill(a);
  return act;
}

TEST(PowerModelTest, ZeroActivityDrawsClockGatingFloor) {
  const PowerModelConfig cfg;
  const PowerModel pm(cfg, scaling::base_node());
  const auto p = pm.dynamic_power(uniform_activity(0.0));
  double total = 0, unconstrained = 0;
  for (int s = 0; s < kNumStructures; ++s) {
    total += p[static_cast<std::size_t>(s)];
    unconstrained += cfg.unconstrained_w_180nm[static_cast<std::size_t>(s)];
  }
  EXPECT_NEAR(total, cfg.clock_gating_floor * unconstrained, 1e-9);
}

TEST(PowerModelTest, FullActivityDrawsUnconstrainedPower) {
  const PowerModelConfig cfg;
  const PowerModel pm(cfg, scaling::base_node());
  const auto p = pm.dynamic_power(uniform_activity(1.0));
  for (int s = 0; s < kNumStructures; ++s) {
    EXPECT_NEAR(p[static_cast<std::size_t>(s)],
                cfg.unconstrained_w_180nm[static_cast<std::size_t>(s)], 1e-9);
  }
}

TEST(PowerModelTest, DynamicPowerMonotoneInActivity) {
  const PowerModel pm({}, scaling::base_node());
  double prev = 0;
  for (double a : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto p = pm.dynamic_power(uniform_activity(a));
    double total = 0;
    for (double v : p) total += v;
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(PowerModelTest, ActivityOutOfRangeThrows) {
  const PowerModel pm({}, scaling::base_node());
  EXPECT_THROW(pm.dynamic_power(uniform_activity(1.5)), InvalidArgument);
  EXPECT_THROW(pm.dynamic_power(uniform_activity(-0.1)), InvalidArgument);
}

TEST(PowerModelTest, DynamicScaleFollowsCv2f) {
  const PowerModel pm({}, scaling::node(scaling::TechPoint::k65nm_1V0));
  // 0.4 · 1.0² · 2.0 GHz / (1.0 · 1.3² · 1.1 GHz) ≈ 0.430.
  EXPECT_NEAR(pm.dynamic_scale(), 0.430, 0.005);
}

TEST(PowerModelTest, LeakageMatchesReferenceDensityAt383K) {
  const PowerModel pm({}, scaling::base_node());
  // Whole core at 383 K: 0.04 W/mm² × 81 mm² = 3.24 W.
  double total = 0;
  for (int s = 0; s < kNumStructures; ++s) {
    total += pm.leakage_power(static_cast<StructureId>(s), 383.0);
  }
  EXPECT_NEAR(total, 3.24, 1e-9);
}

TEST(PowerModelTest, LeakageExponentialInTemperature) {
  const PowerModel pm({}, scaling::base_node());
  const double p350 = pm.leakage_power(StructureId::kLsu, 350.0);
  const double p360 = pm.leakage_power(StructureId::kLsu, 360.0);
  EXPECT_NEAR(p360 / p350, std::exp(0.017 * 10.0), 1e-9);
}

TEST(PowerModelTest, LeakageDensityRisesWithScaling) {
  const PowerModel p180({}, scaling::base_node());
  const PowerModel p65({}, scaling::node(scaling::TechPoint::k65nm_1V0));
  // Density ratio 0.60 / 0.04 = 15, area ratio 0.16 => total ratio 2.4.
  const double l180 = p180.leakage_power(StructureId::kLsu, 383.0);
  const double l65 = p65.leakage_power(StructureId::kLsu, 383.0);
  EXPECT_NEAR(l65 / l180, 15.0 * 0.16, 1e-9);
}

TEST(PowerModelTest, TotalPowerIsDynamicPlusLeakage) {
  const PowerModel pm({}, scaling::base_node());
  const auto act = uniform_activity(0.4);
  std::array<double, kNumStructures> temps{};
  temps.fill(355.0);
  const auto total = pm.total_power(act, temps);
  const auto dyn = pm.dynamic_power(act);
  const auto leak = pm.leakage_power(temps);
  for (int s = 0; s < kNumStructures; ++s) {
    const auto i = static_cast<std::size_t>(s);
    EXPECT_NEAR(total[i], dyn[i] + leak[i], 1e-12);
  }
}

TEST(PowerModelTest, StructureAreasSumToCoreArea) {
  for (const auto tp : scaling::kAllTechPoints) {
    const PowerModel pm({}, scaling::node(tp));
    double sum = 0;
    for (int s = 0; s < kNumStructures; ++s) {
      sum += pm.structure_area_mm2(static_cast<StructureId>(s));
    }
    EXPECT_NEAR(sum, pm.core_area_mm2(), 1e-9);
  }
}

TEST(PowerModelTest, RejectsBadConfig) {
  PowerModelConfig cfg;
  cfg.clock_gating_floor = 1.5;
  EXPECT_THROW(PowerModel(cfg, scaling::base_node()), InvalidArgument);
  cfg = {};
  cfg.base_core_area_mm2 = -1.0;
  EXPECT_THROW(PowerModel(cfg, scaling::base_node()), InvalidArgument);
}

TEST(PowerModelTest, NegativeTemperatureThrows) {
  const PowerModel pm({}, scaling::base_node());
  EXPECT_THROW(pm.leakage_power(StructureId::kIfu, -3.0), InvalidArgument);
}

}  // namespace
}  // namespace ramp::power
