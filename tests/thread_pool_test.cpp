// Tests for the fixed-size thread pool: construction contracts, completion
// of many more tasks than workers, exception propagation through futures,
// nested submission, and deterministic task IDs.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace ramp {
namespace {

TEST(ThreadPoolTest, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPoolTest, ReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, CompletesManyMoreTasksThanWorkers) {
  constexpr int kTasks = 500;
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(done.load(), kTasks);
  long long expect = 0;
  for (int i = 0; i < kTasks; ++i) expect += static_cast<long long>(i) * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          boom.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, WorkerIdIsValidInsideAndNegativeOutside) {
  EXPECT_EQ(ThreadPool::current_worker_id(), -1);
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([] { return ThreadPool::current_worker_id(); }));
  }
  for (auto& f : futures) {
    const int id = f.get();
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 3);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitDependentTasks) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<std::future<int>> children;
  std::vector<std::future<void>> parents;
  for (int i = 0; i < 8; ++i) {
    parents.push_back(pool.submit([i, &pool, &mutex, &children] {
      const std::lock_guard<std::mutex> lock(mutex);
      children.push_back(pool.submit([i] { return 10 * i; }));
    }));
  }
  for (auto& f : parents) f.get();
  int sum = 0;
  for (auto& f : children) sum += f.get();
  EXPECT_EQ(sum, 10 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(ThreadPoolTest, TaskIdsAreSequentialFromSubmissionOrder) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.next_task_id(), 0u);
  auto a = pool.submit([] {});
  auto b = pool.submit([] {});
  EXPECT_EQ(pool.next_task_id(), 2u);
  a.get();
  b.get();
  EXPECT_EQ(pool.next_task_id(), 2u);  // IDs spent at submission, not execution
}

TEST(ThreadPoolTest, RunsTasksConcurrently) {
  // Eight 100 ms sleeps on four workers finish in ~200 ms; a serial pool
  // would need 800 ms. Sleeps overlap even on a single-core host, so this
  // is a reliable check that dispatch is actually parallel.
  using Clock = std::chrono::steady_clock;
  ThreadPool pool(4);
  const auto start = Clock::now();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); }));
  }
  for (auto& f : futures) f.get();
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_LT(wall.count(), 600);
}

TEST(ThreadPoolTest, QueuedAndActiveTrackPoolOccupancy) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.active(), 0u);

  // One blocker occupies the single worker; two more tasks sit in the queue.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();
  auto second = pool.submit([] {});
  auto third = pool.submit([] {});

  EXPECT_EQ(pool.queued(), 2u);
  EXPECT_EQ(pool.active(), 1u);

  release.set_value();
  blocker.get();
  second.get();
  third.get();
  EXPECT_EQ(pool.queued(), 0u);
  // The future can be ready an instant before the worker's decrement lands.
  while (pool.active() != 0) std::this_thread::yield();
  EXPECT_EQ(pool.active(), 0u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace ramp
