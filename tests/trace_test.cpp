// Tests for the synthetic trace generator.
#include "trace/synthetic_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace ramp::trace {
namespace {

GeneratorProfile basic_profile() {
  GeneratorProfile p;
  p.op_mix = {40, 2, 0.2, 10, 0.5, 25, 10, 5, 4};
  return p;
}

std::vector<Instruction> collect(SyntheticTrace& t) {
  std::vector<Instruction> out;
  Instruction ins;
  while (t.next(ins)) out.push_back(ins);
  return out;
}

TEST(SyntheticTraceTest, EmitsExactlyLengthInstructions) {
  SyntheticTrace t(basic_profile(), 1234, 7);
  EXPECT_EQ(collect(t).size(), 1234u);
  Instruction ins;
  EXPECT_FALSE(t.next(ins));  // exhausted stays exhausted
}

TEST(SyntheticTraceTest, DeterministicForSameSeed) {
  SyntheticTrace a(basic_profile(), 2000, 99);
  SyntheticTrace b(basic_profile(), 2000, 99);
  const auto va = collect(a);
  const auto vb = collect(b);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].pc, vb[i].pc);
    EXPECT_EQ(static_cast<int>(va[i].op), static_cast<int>(vb[i].op));
    EXPECT_EQ(va[i].mem_addr, vb[i].mem_addr);
    EXPECT_EQ(va[i].branch_taken, vb[i].branch_taken);
  }
}

TEST(SyntheticTraceTest, DifferentSeedsDiffer) {
  SyntheticTrace a(basic_profile(), 2000, 1);
  SyntheticTrace b(basic_profile(), 2000, 2);
  const auto va = collect(a);
  const auto vb = collect(b);
  int diff = 0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].mem_addr != vb[i].mem_addr ||
        static_cast<int>(va[i].op) != static_cast<int>(vb[i].op)) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 100);
}

TEST(SyntheticTraceTest, MixApproximatesWeights) {
  GeneratorProfile p = basic_profile();
  p.block_len = 1000;  // effectively no forced branches
  SyntheticTrace t(p, 100000, 3);
  std::map<int, int> counts;
  for (const auto& ins : collect(t)) ++counts[static_cast<int>(ins.op)];
  const double total = 100000.0;
  // Loads were weighted 25/96.7 ≈ 0.259.
  EXPECT_NEAR(counts[static_cast<int>(OpClass::kLoad)] / total, 0.259, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(OpClass::kIntAlu)] / total, 0.414, 0.02);
}

TEST(SyntheticTraceTest, BranchesOnFixedGrid) {
  GeneratorProfile p = basic_profile();
  p.block_len = 10;
  SyntheticTrace t(p, 50000, 4);
  std::set<std::uint64_t> branch_pcs;
  for (const auto& ins : collect(t)) {
    if (ins.op == OpClass::kBranch) {
      branch_pcs.insert(ins.pc);
      // Branch sits in the last slot of a 10-instruction block.
      EXPECT_EQ((ins.pc - 0x10000) / 4 % 10, 9u);
    }
  }
  // Static branch sites bounded by the code footprint.
  EXPECT_LE(branch_pcs.size(), static_cast<std::size_t>(p.code_blocks));
  EXPECT_GT(branch_pcs.size(), 10u);
}

TEST(SyntheticTraceTest, StaticBranchesHaveStableTargets) {
  SyntheticTrace t(basic_profile(), 100000, 5);
  std::map<std::uint64_t, std::uint64_t> taken_target;
  for (const auto& ins : collect(t)) {
    if (ins.op == OpClass::kBranch && ins.branch_taken) {
      auto [it, inserted] = taken_target.emplace(ins.pc, ins.branch_target);
      if (!inserted) {
        EXPECT_EQ(it->second, ins.branch_target)
            << "taken target changed for pc " << ins.pc;
      }
    }
  }
}

TEST(SyntheticTraceTest, BranchDirectionsMostlyStablePerPc) {
  GeneratorProfile p = basic_profile();
  p.branch_noise = 0.05;
  SyntheticTrace t(p, 200000, 6);
  std::map<std::uint64_t, std::pair<int, int>> taken_count;  // taken, total
  for (const auto& ins : collect(t)) {
    if (ins.op == OpClass::kBranch) {
      auto& c = taken_count[ins.pc];
      c.first += ins.branch_taken ? 1 : 0;
      ++c.second;
    }
  }
  // Aggregate deviation from each branch's majority direction ≈ noise.
  std::uint64_t minority = 0, total = 0;
  for (const auto& [pc, c] : taken_count) {
    if (c.second < 20) continue;
    minority += std::min(c.first, c.second - c.first);
    total += c.second;
  }
  ASSERT_GT(total, 1000u);
  EXPECT_NEAR(static_cast<double>(minority) / static_cast<double>(total), 0.05,
              0.02);
}

TEST(SyntheticTraceTest, MemoryOpsCarryAddresses) {
  SyntheticTrace t(basic_profile(), 20000, 8);
  for (const auto& ins : collect(t)) {
    if (is_memory(ins.op)) {
      EXPECT_NE(ins.mem_addr, 0u);
    } else {
      EXPECT_EQ(ins.mem_addr, 0u);
    }
  }
}

TEST(SyntheticTraceTest, ValueProducersHaveDestinations) {
  SyntheticTrace t(basic_profile(), 20000, 9);
  for (const auto& ins : collect(t)) {
    const bool produces = ins.op != OpClass::kBranch && ins.op != OpClass::kStore;
    EXPECT_EQ(ins.dst != Instruction::kNoReg, produces);
    if (is_fp(ins.op)) {
      EXPECT_GE(ins.dst, 32) << "FP results must go to FP registers";
    }
  }
}

TEST(SyntheticTraceTest, FpSourcesComeFromFpProducers) {
  SyntheticTrace t(basic_profile(), 50000, 10);
  for (const auto& ins : collect(t)) {
    if (is_fp(ins.op) && ins.src1 != Instruction::kNoReg) {
      EXPECT_GE(ins.src1, 32);
    }
  }
}

TEST(SyntheticTraceTest, DependencyDistanceTracksIlpKnob) {
  // Larger mean dependency distance => sources reference older producers.
  auto mean_distance = [](double dep_p) {
    GeneratorProfile p = basic_profile();
    p.dep_distance_p = dep_p;
    SyntheticTrace t(p, 50000, 11);
    std::map<std::uint16_t, std::uint64_t> last_writer;  // reg -> index
    double sum = 0;
    std::uint64_t n = 0;
    std::uint64_t i = 0;
    Instruction ins;
    while (t.next(ins)) {
      if (ins.src1 != Instruction::kNoReg) {
        auto it = last_writer.find(ins.src1);
        if (it != last_writer.end()) {
          sum += static_cast<double>(i - it->second);
          ++n;
        }
      }
      if (ins.dst != Instruction::kNoReg) last_writer[ins.dst] = i;
      ++i;
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_LT(mean_distance(0.5), mean_distance(0.1));
}

TEST(SyntheticTraceTest, ColdFractionControlsFarAccesses) {
  GeneratorProfile p = basic_profile();
  p.stream_fraction = 0.0;
  p.cold_fraction = 0.25;
  SyntheticTrace t(p, 100000, 12);
  std::uint64_t cold = 0, mem = 0;
  Instruction ins;
  while (t.next(ins)) {
    if (is_memory(ins.op)) {
      ++mem;
      if (ins.mem_addr >= 0x40000000) ++cold;
    }
  }
  ASSERT_GT(mem, 1000u);
  EXPECT_NEAR(static_cast<double>(cold) / static_cast<double>(mem), 0.25, 0.02);
}

TEST(SyntheticTraceTest, RejectsInvalidProfiles) {
  GeneratorProfile p = basic_profile();
  p.op_mix = {1.0};  // wrong arity
  EXPECT_THROW(SyntheticTrace(p, 10, 1), InvalidArgument);

  p = basic_profile();
  p.dep_distance_p = 0.0;
  EXPECT_THROW(SyntheticTrace(p, 10, 1), InvalidArgument);

  p = basic_profile();
  p.stream_fraction = 1.5;
  EXPECT_THROW(SyntheticTrace(p, 10, 1), InvalidArgument);

  p = basic_profile();
  p.branch_noise = 0.9;  // above the 0.5 identifiability bound
  EXPECT_THROW(SyntheticTrace(p, 10, 1), InvalidArgument);

  p = basic_profile();
  p.code_blocks = 0;
  EXPECT_THROW(SyntheticTrace(p, 10, 1), InvalidArgument);
}

TEST(OpClassTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumOpClasses; ++i) {
    names.insert(op_class_name(static_cast<OpClass>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpClasses));
}

}  // namespace
}  // namespace ramp::trace
