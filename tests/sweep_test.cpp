// Tests for the sweep runner: qualification, worst-case, cache roundtrip.
#include "pipeline/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace ramp::pipeline {
namespace {

// One shared quick sweep for all tests in this file (computed once).
const SweepResult& quick_sweep() {
  static const SweepResult sweep = [] {
    EvaluationConfig cfg;
    cfg.trace_instructions = 20'000;
    SweepRunner::Options opts;
    opts.cache_path.clear();
    return SweepRunner(std::move(cfg), std::move(opts)).run();
  }();
  return sweep;
}

TEST(SweepTest, CoversEveryAppTechCell) {
  const auto& sweep = quick_sweep();
  EXPECT_EQ(sweep.results.size(), 16u * 5u);
  for (const auto& w : workloads::spec2k_suite()) {
    for (const auto tp : scaling::kAllTechPoints) {
      EXPECT_NO_THROW(sweep.at(w.name, tp));
    }
  }
  EXPECT_THROW(sweep.at("nonexistent", scaling::TechPoint::k180nm),
               InvalidArgument);
}

TEST(SweepTest, QualificationYields4000FitAt180nm) {
  const auto& sweep = quick_sweep();
  double total = 0.0;
  for (const auto& r : sweep.results) {
    if (r.tech == scaling::TechPoint::k180nm) {
      total += sweep.qualified_fits(r).total();
    }
  }
  EXPECT_NEAR(total / 16.0, 4000.0, 1.0);
}

TEST(SweepTest, EachMechanismAverages1000At180nm) {
  const auto& sweep = quick_sweep();
  for (int m = 0; m < core::kNumMechanisms; ++m) {
    double fp = sweep.average_mechanism_fit(workloads::Suite::kSpecFp,
                                            scaling::TechPoint::k180nm,
                                            static_cast<core::Mechanism>(m));
    double in = sweep.average_mechanism_fit(workloads::Suite::kSpecInt,
                                            scaling::TechPoint::k180nm,
                                            static_cast<core::Mechanism>(m));
    EXPECT_NEAR((fp + in) / 2.0, 1000.0, 1.0)
        << core::mechanism_name(static_cast<core::Mechanism>(m));
  }
}

TEST(SweepTest, WorstCaseDominatesEveryApp) {
  // §5.2: the worst-case FIT is distinctly higher than any individual app.
  const auto& sweep = quick_sweep();
  for (const auto tp : scaling::kAllTechPoints) {
    const double wc = sweep.worst_case(tp).total();
    for (const auto& r : sweep.results) {
      if (r.tech != tp) continue;
      EXPECT_GE(wc, sweep.qualified_fits(r).total())
          << r.app << " at " << scaling::tech_name(tp);
    }
  }
}

TEST(SweepTest, FailureRateRisesMonotonicallyThroughSharedVoltageNodes) {
  // 180 -> 130 -> 90 -> 65 (1.0V): average FIT must increase (§5.2).
  const auto& sweep = quick_sweep();
  const scaling::TechPoint order[] = {
      scaling::TechPoint::k180nm, scaling::TechPoint::k130nm,
      scaling::TechPoint::k90nm, scaling::TechPoint::k65nm_1V0};
  double prev = 0.0;
  for (const auto tp : order) {
    const double avg = sweep.average_total_fit_all(tp);
    EXPECT_GT(avg, prev) << scaling::tech_name(tp);
    prev = avg;
  }
}

TEST(SweepTest, The1V0PointIsWorseThanThe0V9Point) {
  const auto& sweep = quick_sweep();
  EXPECT_GT(sweep.average_total_fit_all(scaling::TechPoint::k65nm_1V0),
            sweep.average_total_fit_all(scaling::TechPoint::k65nm_0V9));
}

TEST(SweepTest, CellsReturnsSuiteInTable3Order) {
  const auto& sweep = quick_sweep();
  const auto fp_cells =
      sweep.cells(workloads::Suite::kSpecFp, scaling::TechPoint::k180nm);
  ASSERT_EQ(fp_cells.size(), 8u);
  EXPECT_EQ(fp_cells.front()->app, "ammp");
  EXPECT_EQ(fp_cells.back()->app, "apsi");
}

TEST(SweepTest, CsvRoundtripPreservesEverything) {
  const auto& sweep = quick_sweep();
  const std::string csv = sweep_to_csv(sweep);
  const auto restored = sweep_from_csv(csv, sweep.config);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->results.size(), sweep.results.size());
  EXPECT_DOUBLE_EQ(restored->constants.em, sweep.constants.em);
  EXPECT_DOUBLE_EQ(restored->constants.tddb, sweep.constants.tddb);
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const auto& a = sweep.results[i];
    const auto& b = restored->results[i];
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.tech, b.tech);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.avg_total_power_w, b.avg_total_power_w);
    EXPECT_DOUBLE_EQ(a.max_structure_temp_k, b.max_structure_temp_k);
    EXPECT_DOUBLE_EQ(a.raw_fits.total(), b.raw_fits.total());
    EXPECT_EQ(a.run.cycles, b.run.cycles);
  }
}

TEST(SweepTest, CacheRejectsMismatchedConfig) {
  const auto& sweep = quick_sweep();
  const std::string csv = sweep_to_csv(sweep);
  EvaluationConfig other = sweep.config;
  other.trace_instructions += 1;
  EXPECT_FALSE(sweep_from_csv(csv, other).has_value());
}

TEST(SweepTest, CacheRejectsGarbage) {
  EvaluationConfig cfg;
  EXPECT_FALSE(sweep_from_csv("not a cache file", cfg).has_value());
  EXPECT_FALSE(sweep_from_csv("", cfg).has_value());
}

TEST(SweepTest, DefaultCachePathResolvesUnderOutDir) {
  // Regression: the default used to be the CWD-relative literal
  // "ramp_sweep_cache.csv", escaping the RAMP_OUT_DIR artifact convention
  // every other output follows.
  const char* saved = std::getenv("RAMP_OUT_DIR");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("RAMP_OUT_DIR", "/tmp/ramp_sweep_path_test", 1);
  EXPECT_EQ(default_sweep_cache_path(),
            "/tmp/ramp_sweep_path_test/ramp_sweep_cache.csv");
  EXPECT_EQ(SweepRunner::Options{}.cache_path,
            "/tmp/ramp_sweep_path_test/ramp_sweep_cache.csv");

  ::unsetenv("RAMP_OUT_DIR");
  EXPECT_EQ(SweepRunner::Options{}.cache_path, "out/ramp_sweep_cache.csv");

  if (saved != nullptr) ::setenv("RAMP_OUT_DIR", restore.c_str(), 1);
}

TEST(SweepTest, ConfigHashSensitivity) {
  EvaluationConfig a, b;
  EXPECT_EQ(config_hash(a), config_hash(b));
  b.thermal.r_vertical_specific *= 1.01;
  EXPECT_NE(config_hash(a), config_hash(b));
  b = a;
  b.seed += 1;
  EXPECT_NE(config_hash(a), config_hash(b));
}

}  // namespace
}  // namespace ramp::pipeline
