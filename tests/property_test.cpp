// Cross-module property tests: physical invariants that must hold across
// parameter sweeps, regardless of calibration values.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fit_tracker.hpp"
#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "thermal/rc_model.hpp"
#include "util/rng.hpp"

namespace ramp {
namespace {

// ---------- Thermal network physics ---------------------------------------

TEST(ThermalPropertyTest, ReciprocityOfThermalResponses) {
  // A linear RC network made of reciprocal elements must satisfy Onsager
  // reciprocity: injecting 1 W into block i raises block j's temperature by
  // exactly as much as injecting 1 W into block j raises block i's.
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::size_t n = net.num_blocks();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::vector<double> pi(n, 0.0), pj(n, 0.0);
      pi[i] = 1.0;
      pj[j] = 1.0;
      const auto ti = net.steady_state(pi);
      const auto tj = net.steady_state(pj);
      EXPECT_NEAR(ti[j] - net.ambient(), tj[i] - net.ambient(), 1e-9)
          << "blocks " << i << "," << j;
    }
  }
}

TEST(ThermalPropertyTest, SuperpositionHolds) {
  // Linearity: response to (P1 + P2) equals response to P1 plus response to
  // P2 (ambient offsets subtracted).
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::size_t n = net.num_blocks();
  Xoshiro256 rng(4);
  std::vector<double> p1(n), p2(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    p1[i] = rng.uniform(0.0, 5.0);
    p2[i] = rng.uniform(0.0, 5.0);
    sum[i] = p1[i] + p2[i];
  }
  const auto t1 = net.steady_state(p1);
  const auto t2 = net.steady_state(p2);
  const auto ts = net.steady_state(sum);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(ts[i] - net.ambient(),
                (t1[i] - net.ambient()) + (t2[i] - net.ambient()), 1e-8);
  }
}

TEST(ThermalPropertyTest, MorePowerNeverCoolsAnyNode) {
  // Monotonicity of the resistive network: raising any block's power can
  // not lower any node's steady-state temperature.
  const thermal::RcNetwork net(thermal::power4_floorplan(), {});
  const std::size_t n = net.num_blocks();
  std::vector<double> base(n, 2.0);
  const auto t0 = net.steady_state(base);
  for (std::size_t k = 0; k < n; ++k) {
    auto bumped = base;
    bumped[k] += 1.0;
    const auto t1 = net.steady_state(bumped);
    for (std::size_t i = 0; i < t1.size(); ++i) {
      EXPECT_GE(t1[i] + 1e-12, t0[i]);
    }
  }
}

TEST(ThermalPropertyTest, EnergyBalanceAtSteadyState) {
  // All injected heat must leave through the sink's convection leg:
  // P_total = (T_sink − T_amb) / R_convec.
  thermal::ThermalConfig cfg;
  const thermal::RcNetwork net(thermal::power4_floorplan(), cfg);
  Xoshiro256 rng(5);
  std::vector<double> p(net.num_blocks());
  double total = 0.0;
  for (auto& v : p) {
    v = rng.uniform(0.5, 8.0);
    total += v;
  }
  const auto t = net.steady_state(p);
  const double sink = t[net.num_blocks() + 1];
  EXPECT_NEAR((sink - cfg.ambient_k) / cfg.r_convec_k_per_w, total, 1e-8);
}

// ---------- Failure-model monotonicity across the real pipeline -----------

class VoltageMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(VoltageMonotonicityTest, TotalFitRisesWithVoltageAtFixedTemp) {
  // At any temperature in range, raising voltage must not lower total FIT
  // (TDDB is the only V-dependent term and it increases).
  const double temp = GetParam();
  const core::RampModel model(scaling::node(scaling::TechPoint::k65nm_1V0));
  double prev = 0.0;
  for (double v : {0.8, 0.9, 1.0, 1.1, 1.2}) {
    const double fit = core::steady_state_summary(model, temp, 0.5, v).total();
    EXPECT_GE(fit, prev);
    prev = fit;
  }
}

INSTANTIATE_TEST_SUITE_P(Temps, VoltageMonotonicityTest,
                         ::testing::Values(335.0, 350.0, 365.0, 380.0));

TEST(ModelPropertyTest, SofrIsAdditiveAcrossTrackerSplits) {
  // Feeding one long interval or two half-length intervals with identical
  // conditions must give identical summaries (the running average is exact
  // for piecewise-constant inputs).
  const core::RampModel model(scaling::base_node());
  std::array<double, sim::kNumStructures> temps{};
  temps.fill(356.0);
  std::array<double, sim::kNumStructures> act{};
  act.fill(0.4);

  core::FitTracker one(model);
  one.add_interval(temps, act, 1.3, 2e-6);
  core::FitTracker two(model);
  two.add_interval(temps, act, 1.3, 1e-6);
  two.add_interval(temps, act, 1.3, 1e-6);
  EXPECT_NEAR(one.summary().total(), two.summary().total(), 1e-12);
}

TEST(ModelPropertyTest, QualifiedTotalsInvariantToConstantRescale) {
  // Scaling all raw FITs by c and re-qualifying must give identical
  // absolute results: qualification removes any global scale.
  core::FitSummary raw;
  raw.by_structure[2][0] = 3.0;
  raw.by_structure[4][1] = 5.0;
  raw.by_structure[1][2] = 7.0;
  raw.tc_fit = 2.0;

  core::FitSummary scaled_raw = raw;
  for (auto& row : scaled_raw.by_structure) {
    for (double& v : row) v *= 123.0;
  }
  scaled_raw.tc_fit *= 123.0;

  const auto k1 = core::qualify({raw});
  const auto k2 = core::qualify({scaled_raw});
  const auto q1 = pipeline::scale_summary(raw, k1);
  const auto q2 = pipeline::scale_summary(scaled_raw, k2);
  EXPECT_NEAR(q1.total(), q2.total(), 1e-9);
  for (int m = 0; m < core::kNumMechanisms; ++m) {
    EXPECT_NEAR(q1.by_mechanism()[static_cast<std::size_t>(m)],
                q2.by_mechanism()[static_cast<std::size_t>(m)], 1e-9);
  }
}

// ---------- Pipeline-level invariants --------------------------------------

TEST(PipelinePropertyTest, HotterLeakageTechnologyRunsHotter) {
  // Same workload and node parameters except leakage density: the leakier
  // variant must be at least as hot and have at least the FIT.
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 20'000;
  const pipeline::Evaluator ev(cfg);
  const auto base = ev.evaluate(workloads::workload("gzip"),
                                scaling::TechPoint::k65nm_0V9);
  const auto hot = ev.evaluate(workloads::workload("gzip"),
                               scaling::TechPoint::k65nm_1V0);
  // k65nm_1V0 differs by higher V and higher leakage: strictly worse.
  EXPECT_GT(hot.max_structure_temp_k, base.max_structure_temp_k);
  EXPECT_GT(hot.raw_fits.total(), base.raw_fits.total());
}

TEST(PipelinePropertyTest, LongerTraceConvergesSteadyStatistics) {
  // IPC and power must converge as trace length grows (warmup amortizes):
  // successive doublings move the result less and less.
  pipeline::EvaluationConfig cfg;
  const auto at = [&](std::uint64_t n) {
    pipeline::EvaluationConfig c = cfg;
    c.trace_instructions = n;
    return pipeline::Evaluator(c).evaluate(workloads::workload("mgrid"),
                                           scaling::TechPoint::k180nm);
  };
  const auto a = at(25'000);
  const auto b = at(50'000);
  const auto c = at(100'000);
  const double d1 = std::abs(b.ipc - a.ipc);
  const double d2 = std::abs(c.ipc - b.ipc);
  EXPECT_LT(d2, d1 + 0.02);
  EXPECT_LT(std::abs(c.avg_total_power_w - b.avg_total_power_w), 1.5);
}

TEST(PipelinePropertyTest, SeedChangesNoiseNotShape) {
  // Different seeds perturb IPC/power slightly but never the qualitative
  // scaling direction.
  pipeline::EvaluationConfig a, b;
  a.trace_instructions = b.trace_instructions = 30'000;
  a.seed = 1;
  b.seed = 2;
  for (const auto* cfg : {&a, &b}) {
    const pipeline::Evaluator ev(*cfg);
    const auto base = ev.evaluate(workloads::workload("apsi"),
                                  scaling::TechPoint::k180nm);
    const auto scaled = ev.evaluate(workloads::workload("apsi"),
                                    scaling::TechPoint::k65nm_1V0,
                                    base.sink_temp_k);
    EXPECT_GT(scaled.raw_fits.total(), base.raw_fits.total());
    EXPECT_GT(scaled.max_structure_temp_k, base.max_structure_temp_k);
  }
}

}  // namespace
}  // namespace ramp
