// Tests for the out-of-order core timing model.
#include "sim/ooo_core.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "trace/synthetic_generator.hpp"
#include "util/error.hpp"

namespace ramp::sim {
namespace {

using trace::Instruction;
using trace::OpClass;

/// Scripted trace for handcrafted pipelines.
class ScriptedTrace final : public trace::TraceReader {
 public:
  explicit ScriptedTrace(std::deque<Instruction> script)
      : script_(std::move(script)) {}
  bool next(Instruction& out) override {
    if (script_.empty()) return false;
    out = script_.front();
    script_.pop_front();
    return true;
  }

 private:
  std::deque<Instruction> script_;
};

Instruction alu(std::uint16_t dst, std::uint16_t src1 = Instruction::kNoReg,
                std::uint16_t src2 = Instruction::kNoReg) {
  Instruction i;
  i.op = OpClass::kIntAlu;
  i.dst = dst;
  i.src1 = src1;
  i.src2 = src2;
  return i;
}

// Scripted traces wrap their PCs within a 4 KB loop so the I-cache warms up
// after the first pass (a straight-line PC walk would be a pathological
// all-cold-I-miss program).
std::uint64_t looped_pc(int k) {
  return 0x10000 + static_cast<std::uint64_t>(k % 256) * 4;  // 1 KB loop
}

std::deque<Instruction> chain(int n) {
  // A fully serial dependency chain: IPC must approach 1 / latency.
  std::deque<Instruction> s;
  for (int k = 0; k < n; ++k) {
    Instruction i = alu(1, 1);
    i.pc = looped_pc(k);
    s.push_back(i);
  }
  return s;
}

std::deque<Instruction> independent(int n) {
  std::deque<Instruction> s;
  for (int k = 0; k < n; ++k) {
    Instruction i = alu(static_cast<std::uint16_t>(k % 16));
    i.pc = looped_pc(k);
    s.push_back(i);
  }
  return s;
}

TEST(OooCoreTest, SerialChainRunsAtIpcOne) {
  ScriptedTrace t(chain(50000));
  OooCore core(base_core_config());
  const auto r = core.run(t, 1000);
  EXPECT_EQ(r.totals.instructions, 50000u);
  // 1-cycle ALU chain: one instruction per cycle asymptotically.
  EXPECT_NEAR(r.totals.ipc(), 1.0, 0.05);
}

TEST(OooCoreTest, IndependentOpsBoundByIntUnits) {
  ScriptedTrace t(independent(100000));
  OooCore core(base_core_config());
  const auto r = core.run(t, 1000);
  // 2 integer units bound throughput at 2 IPC.
  EXPECT_NEAR(r.totals.ipc(), 2.0, 0.1);
}

TEST(OooCoreTest, RetirementBoundRespected) {
  // Even infinitely parallel work cannot exceed one dispatch group (5) per
  // cycle; with 2 Int units the binding constraint here is the units, so
  // check the global invariant instead: IPC <= 5.
  ScriptedTrace t(independent(5000));
  OooCore core(base_core_config());
  const auto r = core.run(t, 500);
  EXPECT_LE(r.totals.ipc(), 5.0);
}

TEST(OooCoreTest, DivideLatencySerializesChain) {
  std::deque<Instruction> s;
  std::uint64_t pc = 0x10000;
  for (int k = 0; k < 200; ++k) {
    Instruction i = alu(1, 1);
    i.op = OpClass::kIntDiv;
    i.pc = pc;
    pc += 4;
    s.push_back(i);
  }
  ScriptedTrace t(std::move(s));
  OooCore core(base_core_config());
  const auto r = core.run(t, 10000);
  // Serial 35-cycle divides: IPC ≈ 1/35.
  EXPECT_NEAR(r.totals.ipc(), 1.0 / 35.0, 0.005);
}

TEST(OooCoreTest, LoadMissesAreOverlapped) {
  // Independent loads striding whole L2 lines: every access misses all the
  // way to memory. The MSHR cap (8) bounds the overlap, but throughput must
  // beat the fully serialized latency by a wide margin.
  std::deque<Instruction> s;
  for (int k = 0; k < 2000; ++k) {
    Instruction i;
    i.op = OpClass::kLoad;
    i.dst = static_cast<std::uint16_t>(k % 16);
    i.mem_addr = 0x100000 + static_cast<std::uint64_t>(k) * 128;
    i.pc = looped_pc(k);
    s.push_back(i);
  }
  ScriptedTrace t(std::move(s));
  OooCore core(base_core_config());
  const auto r = core.run(t, 10000);
  const double serial_ipc = 1.0 / 102.0;  // memory latency, no overlap
  EXPECT_GT(r.totals.ipc(), 3.0 * serial_ipc);
  EXPECT_GT(r.totals.l1d_misses, 1900u);
}

TEST(OooCoreTest, MispredictsCostCycles) {
  auto run_with_noise = [](double noise) {
    trace::GeneratorProfile p;
    p.op_mix = {50, 1, 0, 0, 0, 25, 10, 6, 4};
    p.branch_noise = noise;
    trace::SyntheticTrace t(p, 60000, 11);
    OooCore core(base_core_config());
    return core.run(t, 1100).totals;
  };
  const auto clean = run_with_noise(0.0);
  const auto noisy = run_with_noise(0.3);
  EXPECT_GT(noisy.branch_mispredict_rate(),
            clean.branch_mispredict_rate() + 0.1);
  EXPECT_LT(noisy.ipc(), clean.ipc() * 0.8);
}

TEST(OooCoreTest, IntervalsPartitionTheRun) {
  trace::GeneratorProfile p;
  p.op_mix = {50, 1, 0, 0, 0, 25, 10, 6, 4};
  trace::SyntheticTrace t(p, 30000, 3);
  OooCore core(base_core_config());
  const auto r = core.run(t, 500);
  std::uint64_t cyc = 0, ins = 0;
  for (const auto& iv : r.intervals) {
    cyc += iv.cycles;
    ins += iv.instructions;
    for (double a : iv.activity) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
  EXPECT_EQ(cyc, r.totals.cycles);
  EXPECT_EQ(ins, r.totals.instructions);
  EXPECT_EQ(ins, 30000u);
}

TEST(OooCoreTest, ActivityReflectsWorkloadMix) {
  // An FP-free workload must leave the FPU idle.
  trace::GeneratorProfile p;
  p.op_mix = {50, 1, 0, 0, 0, 25, 10, 6, 4};
  trace::SyntheticTrace t(p, 30000, 4);
  OooCore core(base_core_config());
  const auto r = core.run(t, 1100);
  EXPECT_DOUBLE_EQ(r.totals.avg_activity[idx(StructureId::kFpu)], 0.0);
  EXPECT_GT(r.totals.avg_activity[idx(StructureId::kFxu)], 0.1);
  EXPECT_GT(r.totals.avg_activity[idx(StructureId::kLsu)], 0.1);
}

TEST(OooCoreTest, FasterClockSlowsMemoryBoundCode) {
  // The same trace at 2 GHz sees more memory-latency cycles (fixed ns), so
  // IPC must drop for a memory-bound workload.
  trace::GeneratorProfile p;
  p.op_mix = {30, 1, 0, 0, 0, 40, 10, 4, 3};
  p.cold_fraction = 0.2;
  p.stream_fraction = 0.2;

  trace::SyntheticTrace t180(p, 40000, 5);
  OooCore c180(core_config_for(scaling::node(scaling::TechPoint::k180nm)));
  const double ipc180 = c180.run(t180, 1100).totals.ipc();

  trace::SyntheticTrace t65(p, 40000, 5);
  OooCore c65(core_config_for(scaling::node(scaling::TechPoint::k65nm_1V0)));
  const double ipc65 = c65.run(t65, 2000).totals.ipc();

  EXPECT_LT(ipc65, ipc180);
}

TEST(OooCoreTest, DeterministicAcrossRuns) {
  trace::GeneratorProfile p;
  p.op_mix = {50, 1, 0.2, 10, 0.5, 25, 10, 6, 4};
  auto run = [&] {
    trace::SyntheticTrace t(p, 20000, 77);
    OooCore core(base_core_config());
    return core.run(t, 700);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.totals.cycles, b.totals.cycles);
  EXPECT_EQ(a.totals.branch_mispredicts, b.totals.branch_mispredicts);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].instructions, b.intervals[i].instructions);
  }
}

TEST(OooCoreTest, ZeroIntervalThrows) {
  ScriptedTrace t(chain(10));
  OooCore core(base_core_config());
  EXPECT_THROW(core.run(t, 0), InvalidArgument);
}

TEST(OooCoreTest, EmptyTraceYieldsEmptyRun) {
  ScriptedTrace t({});
  OooCore core(base_core_config());
  const auto r = core.run(t, 100);
  EXPECT_EQ(r.totals.instructions, 0u);
}

// Property sweep: IPC is monotonically non-increasing as the ILP knob
// shrinks (serial chains get longer).
class IlpMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(IlpMonotonicityTest, MoreIlpNeverHurts) {
  auto ipc_at = [](double mean_distance) {
    trace::GeneratorProfile p;
    p.op_mix = {60, 1, 0, 0, 0, 20, 8, 5, 4};
    p.dep_distance_p = 1.0 / (1.0 + mean_distance);
    trace::SyntheticTrace t(p, 40000, 9);
    OooCore core(base_core_config());
    return core.run(t, 1100).totals.ipc();
  };
  const double lo = ipc_at(GetParam());
  const double hi = ipc_at(GetParam() * 3.0);
  EXPECT_GE(hi, lo * 0.95);  // allow small stochastic slack
}

INSTANTIATE_TEST_SUITE_P(Distances, IlpMonotonicityTest,
                         ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace ramp::sim
