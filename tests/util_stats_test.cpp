// Tests for streaming statistics.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp {
namespace {

TEST(RunningMeanTest, EmptyIsZero) {
  RunningMean m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(RunningMeanTest, MatchesArithmeticMean) {
  RunningMean m;
  for (int i = 1; i <= 100; ++i) m.add(i);
  EXPECT_DOUBLE_EQ(m.mean(), 50.5);
  EXPECT_EQ(m.count(), 100u);
}

TEST(RunningMeanTest, ResetClears) {
  RunningMean m;
  m.add(42.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  // Catastrophic cancellation breaks naive sum-of-squares here.
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedMeanTest, WeightsByDuration) {
  TimeWeightedMean m;
  m.add(10.0, 1.0);
  m.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean(), (10.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.total_time(), 4.0);
}

TEST(TimeWeightedMeanTest, ZeroDurationIgnored) {
  TimeWeightedMean m;
  m.add(100.0, 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  m.add(5.0, 2.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
}

TEST(TimeWeightedMeanTest, NegativeDurationThrows) {
  TimeWeightedMean m;
  EXPECT_THROW(m.add(1.0, -1.0), InvalidArgument);
}

TEST(HistogramTest, BinsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.bin_count(i), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(i), 0.1);
  }
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace ramp
