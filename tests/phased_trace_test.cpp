// Tests for multi-phase trace composition.
#include "trace/phased_trace.hpp"

#include <gtest/gtest.h>

#include "sim/ooo_core.hpp"
#include "util/error.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::trace {
namespace {

GeneratorProfile int_heavy() {
  GeneratorProfile p;
  p.op_mix = {60, 1, 0, 0, 0, 22, 8, 5, 4};
  return p;
}

GeneratorProfile fp_heavy() {
  GeneratorProfile p;
  p.op_mix = {10, 1, 0, 50, 1, 24, 8, 3, 3};
  return p;
}

TEST(PhasedTraceTest, EmitsExactLength) {
  PhasedTrace t({int_heavy(), fp_heavy()}, 10000, 1000, 5);
  Instruction ins;
  std::uint64_t n = 0;
  while (t.next(ins)) ++n;
  EXPECT_EQ(n, 10000u);
  EXPECT_FALSE(t.next(ins));
}

TEST(PhasedTraceTest, PhasesAlternate) {
  PhasedTrace t({int_heavy(), fp_heavy()}, 8000, 1000, 6);
  Instruction ins;
  std::uint64_t fp_in_phase0 = 0, fp_in_phase1 = 0;
  std::uint64_t n0 = 0, n1 = 0;
  for (std::uint64_t i = 0; i < 8000; ++i) {
    ASSERT_TRUE(t.next(ins));
    const bool fp = is_fp(ins.op);
    if ((i / 1000) % 2 == 0) {
      ++n0;
      fp_in_phase0 += fp ? 1 : 0;
    } else {
      ++n1;
      fp_in_phase1 += fp ? 1 : 0;
    }
  }
  // Phase 0 is integer-heavy (no FP); phase 1 is FP-heavy (~50%).
  EXPECT_EQ(fp_in_phase0, 0u);
  EXPECT_GT(static_cast<double>(fp_in_phase1) / static_cast<double>(n1), 0.3);
}

TEST(PhasedTraceTest, SinglePhaseEqualsPlainGenerator) {
  PhasedTrace phased({int_heavy()}, 5000, 700, 9);
  SyntheticTrace plain(int_heavy(), 5000, 9);
  Instruction a, b;
  while (plain.next(a)) {
    ASSERT_TRUE(phased.next(b));
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    EXPECT_EQ(a.mem_addr, b.mem_addr);
  }
}

TEST(PhasedTraceTest, DrivesSimulatorWithPhaseSwings) {
  // The FPU activity must swing between phases at interval granularity.
  PhasedTrace t({int_heavy(), fp_heavy()}, 60000, 10000, 11);
  sim::OooCore core(sim::base_core_config());
  const auto r = core.run(t, 1100);
  double min_fpu = 1.0, max_fpu = 0.0;
  for (const auto& iv : r.intervals) {
    const double a = iv.activity[sim::idx(sim::StructureId::kFpu)];
    min_fpu = std::min(min_fpu, a);
    max_fpu = std::max(max_fpu, a);
  }
  EXPECT_LT(min_fpu, 0.02);   // integer phases leave the FPU idle
  EXPECT_GT(max_fpu, 0.10);   // FP phases load it
}

TEST(PhasedTraceTest, RejectsBadArguments) {
  EXPECT_THROW(PhasedTrace({}, 100, 10, 1), InvalidArgument);
  EXPECT_THROW(PhasedTrace({int_heavy()}, 100, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace ramp::trace
