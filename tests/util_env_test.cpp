// Tests for the environment-override helpers, in particular the strict
// integer parsing that replaced the silent stoull fallback: a misspelled
// RAMP_TRACE_LEN / RAMP_SEED / RAMP_JOBS must fail loudly, never be
// silently replaced by a default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "pipeline/evaluator.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace ramp {
namespace {

/// Sets an environment variable for one test and restores it on exit.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    if (value != nullptr) {
      ::setenv(name_.c_str(), value, /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

TEST(ParseU64Test, AcceptsPlainDigits) {
  EXPECT_EQ(parse_u64("0", "x"), 0u);
  EXPECT_EQ(parse_u64("42", "x"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615", "x"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64Test, RejectsGarbage) {
  EXPECT_THROW(parse_u64("", "x"), InvalidArgument);
  EXPECT_THROW(parse_u64("abc", "x"), InvalidArgument);
  EXPECT_THROW(parse_u64("12abc", "x"), InvalidArgument);   // trailing junk
  EXPECT_THROW(parse_u64("-1", "x"), InvalidArgument);      // no sign
  EXPECT_THROW(parse_u64("+5", "x"), InvalidArgument);
  EXPECT_THROW(parse_u64(" 5", "x"), InvalidArgument);      // no whitespace
  EXPECT_THROW(parse_u64("5 ", "x"), InvalidArgument);
  EXPECT_THROW(parse_u64("1.5", "x"), InvalidArgument);
  EXPECT_THROW(parse_u64("18446744073709551616", "x"),      // 2^64 overflows
               InvalidArgument);
}

TEST(ParseU64Test, ErrorNamesTheSetting) {
  try {
    parse_u64("nope", "environment variable RAMP_SEED");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("RAMP_SEED"), std::string::npos);
  }
}

TEST(EnvU64Test, FallsBackOnlyWhenUnset) {
  ScopedEnv unset("RAMP_TEST_U64", nullptr);
  EXPECT_EQ(env_u64("RAMP_TEST_U64", 7), 7u);
  ScopedEnv set("RAMP_TEST_U64", "123");
  EXPECT_EQ(env_u64("RAMP_TEST_U64", 7), 123u);
}

TEST(EnvU64Test, MalformedValueThrowsInsteadOfFallingBack) {
  ScopedEnv set("RAMP_TEST_U64", "twelve");
  EXPECT_THROW(env_u64("RAMP_TEST_U64", 7), InvalidArgument);
  ScopedEnv negative("RAMP_TEST_U64", "-3");
  EXPECT_THROW(env_u64("RAMP_TEST_U64", 7), InvalidArgument);
}

TEST(EnvJobsTest, RejectsZeroWorkers) {
  ScopedEnv set("RAMP_TEST_JOBS", "0");
  EXPECT_THROW(env_jobs("RAMP_TEST_JOBS", 4), InvalidArgument);
  ScopedEnv ok("RAMP_TEST_JOBS", "3");
  EXPECT_EQ(env_jobs("RAMP_TEST_JOBS", 4), 3u);
  ScopedEnv unset("RAMP_TEST_JOBS", nullptr);
  EXPECT_EQ(env_jobs("RAMP_TEST_JOBS", 4), 4u);
}

TEST(OutputDirTest, DefaultsToOutAndHonorsOverride) {
  ScopedEnv unset("RAMP_OUT_DIR", nullptr);
  EXPECT_EQ(output_dir(), "out");
  ScopedEnv set("RAMP_OUT_DIR", "/tmp/ramp_artifacts");
  EXPECT_EQ(output_dir(), "/tmp/ramp_artifacts");
}

TEST(EnvOnOffTest, AcceptsAllSwitchSpellings) {
  ScopedEnv unset("RAMP_TEST_SWITCH", nullptr);
  EXPECT_TRUE(env_on_off("RAMP_TEST_SWITCH", true));
  EXPECT_FALSE(env_on_off("RAMP_TEST_SWITCH", false));
  for (const char* on : {"on", "1", "true", "yes", "ON", "True", "YES"}) {
    ScopedEnv set("RAMP_TEST_SWITCH", on);
    EXPECT_TRUE(env_on_off("RAMP_TEST_SWITCH", false)) << on;
  }
  for (const char* off : {"off", "0", "false", "no", "OFF", "False", "NO"}) {
    ScopedEnv set("RAMP_TEST_SWITCH", off);
    EXPECT_FALSE(env_on_off("RAMP_TEST_SWITCH", true)) << off;
  }
}

TEST(EnvOnOffTest, UnrecognizedValueThrowsInsteadOfFallingBack) {
  for (const char* bad : {"banana", "enable", "2", "o n", " on"}) {
    ScopedEnv set("RAMP_TEST_SWITCH", bad);
    EXPECT_THROW(env_on_off("RAMP_TEST_SWITCH", true), InvalidArgument) << bad;
  }
}

TEST(FromEnvTest, ReadsOverrides) {
  ScopedEnv trace("RAMP_TRACE_LEN", "12345");
  ScopedEnv seed("RAMP_SEED", "99");
  const auto cfg = pipeline::EvaluationConfig::from_env();
  EXPECT_EQ(cfg.trace_instructions, 12345u);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(FromEnvTest, MalformedTraceLenThrows) {
  ScopedEnv trace("RAMP_TRACE_LEN", "300k");
  EXPECT_THROW(pipeline::EvaluationConfig::from_env(), InvalidArgument);
}

TEST(FromEnvTest, ZeroTraceLenThrows) {
  ScopedEnv trace("RAMP_TRACE_LEN", "0");
  EXPECT_THROW(pipeline::EvaluationConfig::from_env(), InvalidArgument);
}

TEST(FromEnvTest, MalformedSeedThrows) {
  ScopedEnv seed("RAMP_SEED", "0x2a");
  EXPECT_THROW(pipeline::EvaluationConfig::from_env(), InvalidArgument);
}

TEST(FromEnvTest, ReadsMetricsSwitchStrictly) {
  {
    ScopedEnv off("RAMP_METRICS", "off");
    EXPECT_FALSE(pipeline::EvaluationConfig::from_env().metrics_enabled);
  }
  {
    ScopedEnv on("RAMP_METRICS", "1");
    EXPECT_TRUE(pipeline::EvaluationConfig::from_env().metrics_enabled);
  }
  {
    ScopedEnv unset("RAMP_METRICS", nullptr);
    EXPECT_TRUE(pipeline::EvaluationConfig::from_env().metrics_enabled);
  }
  ScopedEnv bad("RAMP_METRICS", "banana");
  EXPECT_THROW(pipeline::EvaluationConfig::from_env(), InvalidArgument);
}

TEST(FromEnvTest, PassesMetricsPathThrough) {
  {
    ScopedEnv unset("RAMP_METRICS_PATH", nullptr);
    EXPECT_EQ(pipeline::EvaluationConfig::from_env().metrics_path, "");
  }
  ScopedEnv set("RAMP_METRICS_PATH", "/tmp/m.prom");
  EXPECT_EQ(pipeline::EvaluationConfig::from_env().metrics_path, "/tmp/m.prom");
}

}  // namespace
}  // namespace ramp
