// End-to-end tests of the built `ramp` binary (path injected by CMake as
// RAMP_CLI_PATH): report/missions golden shape and determinism across job
// counts, strict flag parsing, and the NDJSON serve loop over a real pipe.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "serve/json.hpp"

namespace ramp {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout only; stderr is discarded
};

/// Runs `ramp <args>` through the shell from a scratch directory, with the
/// artifact/cache environment pointed away from the source tree. Extra
/// environment assignments (e.g. "RAMP_METRICS=off") go in `env`.
RunResult run_cli(const std::string& args, const std::string& stdin_doc = "",
                  const std::string& env = "") {
  static const std::string scratch = [] {
    const fs::path dir = fs::temp_directory_path() / "ramp_cli_test";
    fs::create_directories(dir);
    return dir.string();
  }();
  std::string cmd = "cd '" + scratch + "' && RAMP_OUT_DIR='" + scratch +
                    "' RAMP_CACHE=off " + env + " '" RAMP_CLI_PATH "' " +
                    args + " 2>/dev/null";
  if (!stdin_doc.empty()) {
    const std::string doc = scratch + "/stdin.ndjson";
    std::FILE* f = std::fopen(doc.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(stdin_doc.data(), 1, stdin_doc.size(), f);
    std::fclose(f);
    cmd += " < '" + doc + "'";
  }

  RunResult r;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = ::pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(CliTest, NoArgumentsPrintsUsageAndFails) {
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("frobnicate").exit_code, 2);
}

TEST(CliTest, MalformedFlagValueFailsLoudly) {
  // Satellite of the strict-parse fix: "12abc" used to silently parse as 12.
  EXPECT_EQ(run_cli("evaluate gcc 90 --trace-len 12abc").exit_code, 1);
  EXPECT_EQ(run_cli("evaluate gcc 90 --trace-len -5").exit_code, 1);
  EXPECT_EQ(run_cli("serve --jobs zero").exit_code, 1);
}

TEST(CliTest, UnknownServeArgumentRejected) {
  EXPECT_EQ(run_cli("serve --frobnicate").exit_code, 2);
}

TEST(CliTest, EvaluateOneCell) {
  const auto r = run_cli("evaluate gcc 90 --trace-len 5000");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("IPC"), std::string::npos);
  EXPECT_NE(r.output.find("FIT"), std::string::npos);
  EXPECT_NE(r.output.find("MTTF"), std::string::npos);
}

TEST(CliTest, ReportGoldenShapeAndJobCountDeterminism) {
  const auto serial = run_cli("report --trace-len 5000 --jobs 1");
  ASSERT_EQ(serial.exit_code, 0);
  EXPECT_NE(serial.output.find("# RAMP scaling report"), std::string::npos);
  EXPECT_NE(serial.output.find("## Mechanism breakdown"), std::string::npos);
  for (const char* node : {"| 180", "| 130", "| 90", "| 65"}) {
    EXPECT_NE(serial.output.find(node), std::string::npos) << node;
  }

  const auto parallel = run_cli("report --trace-len 5000 --jobs 2");
  ASSERT_EQ(parallel.exit_code, 0);
  // The whole report, byte for byte: job count must not change any number.
  EXPECT_EQ(parallel.output, serial.output);
}

TEST(CliTest, MissionsGoldenShape) {
  const auto r = run_cli("missions --trace-len 5000 --jobs 2");
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("Example deployment missions"), std::string::npos);
  EXPECT_EQ(r.output, run_cli("missions --trace-len 5000 --jobs 2").output);
}

TEST(CliTest, ServeAnswersOverAPipe) {
  const auto r = run_cli(
      "serve --trace-len 5000 --jobs 2 --no-persist",
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":1}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"id\":2}\n"
      "{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(r.exit_code, 0);

  std::vector<serve::Json> responses;
  std::istringstream lines(r.output);
  std::string line;
  while (std::getline(lines, line)) {
    responses.push_back(serve::Json::parse(line));
  }
  ASSERT_EQ(responses.size(), 4u);

  EXPECT_TRUE(responses[0].find("ok")->as_bool());
  EXPECT_FALSE(responses[0].find("cached")->as_bool());
  ASSERT_NE(responses[0].find("result"), nullptr);
  const double ipc = responses[0].find("result")->find("ipc")->as_number();
  EXPECT_GT(ipc, 0.0);

  const serve::Json* stats = responses[1].find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->find("misses")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(stats->find("evaluations")->as_number(), 2.0);

  // The repeat was answered from the in-memory cache, bit-identically.
  EXPECT_TRUE(responses[2].find("cached")->as_bool());
  EXPECT_EQ(responses[2].find("result")->dump(),
            responses[0].find("result")->dump());

  EXPECT_EQ(responses[3].find("op")->as_string(), "shutdown");
}

TEST(CliTest, SweepMetricsFlagWritesPrometheusProfile) {
  const fs::path path = fs::temp_directory_path() / "ramp_cli_test_metrics.prom";
  fs::remove(path);
  const auto r = run_cli("sweep --trace-len 5000 --jobs 2 --metrics='" +
                         path.string() + "'");
  ASSERT_EQ(r.exit_code, 0);
  ASSERT_TRUE(fs::exists(path));
  std::stringstream body;
  body << std::ifstream(path).rdbuf();
  const std::string text = body.str();
  // The per-stage profile and sweep counters made it into the dump; the full
  // grid is 16 apps x 5 nodes.
  EXPECT_NE(text.find("ramp_stage_seconds_total{stage=\"sim\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ramp_sweep_cells_total 80"), std::string::npos);
  fs::remove(path);
}

TEST(CliTest, MetricsOffLeavesSweepOutputByteIdentical) {
  // RAMP_METRICS=off must be purely observational: the sweep table on stdout
  // is byte-for-byte what an instrumented run prints.
  const auto on = run_cli("sweep --trace-len 5000 --jobs 2");
  ASSERT_EQ(on.exit_code, 0);
  const auto off = run_cli("sweep --trace-len 5000 --jobs 2", "",
                           "RAMP_METRICS=off");
  ASSERT_EQ(off.exit_code, 0);
  EXPECT_EQ(off.output, on.output);
  EXPECT_NE(on.output.find("Qualified total FIT"), std::string::npos);
}

TEST(CliTest, SweepCsvMatchesCommittedGoldenByteForByte) {
  // The hot-path optimizations (workspace solvers, memoized FIT kernel)
  // promise bitwise-unchanged physics. This pins the full sweep grid to a
  // committed artifact: any ulp drift anywhere in the pipeline shows up as
  // a byte diff here, at serial and parallel job counts alike.
  const fs::path golden = fs::path(RAMP_GOLDEN_DIR) / "sweep_trace4000.csv";
  ASSERT_TRUE(fs::exists(golden)) << golden;
  std::stringstream want;
  want << std::ifstream(golden, std::ios::binary).rdbuf();
  ASSERT_FALSE(want.str().empty());

  for (const char* jobs : {"1", "4"}) {
    const fs::path dir =
        fs::temp_directory_path() / (std::string("ramp_cli_golden_j") + jobs);
    fs::remove_all(dir);  // cold cache: the sweep must recompute and rewrite
    fs::create_directories(dir);
    const auto r = run_cli(std::string("sweep --trace-len 4000 --jobs ") +
                               jobs,
                           "",
                           "RAMP_OUT_DIR='" + dir.string() +
                               "' RAMP_CACHE=on RAMP_METRICS=off");
    ASSERT_EQ(r.exit_code, 0);
    const fs::path cache = dir / "ramp_sweep_cache.csv";
    ASSERT_TRUE(fs::exists(cache));
    std::stringstream got;
    got << std::ifstream(cache, std::ios::binary).rdbuf();
    EXPECT_EQ(got.str(), want.str()) << "sweep CSV diverged at --jobs "
                                     << jobs;
    fs::remove_all(dir);
  }
}

TEST(CliTest, StageCacheSweepColdAndWarmMatchGolden) {
  // The stage-graph memoization contract: a sweep scheduling against the
  // content-addressed stage store — cold or fully warm, serial or parallel
  // — serializes byte-for-byte like the store-less monolithic path, pinned
  // by the same committed golden artifact as the test above.
  const fs::path golden = fs::path(RAMP_GOLDEN_DIR) / "sweep_trace4000.csv";
  ASSERT_TRUE(fs::exists(golden)) << golden;
  std::stringstream want;
  want << std::ifstream(golden, std::ios::binary).rdbuf();
  ASSERT_FALSE(want.str().empty());

  for (const char* jobs : {"1", "4"}) {
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("ramp_cli_stage_cache_j") + jobs);
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string env = "RAMP_OUT_DIR='" + dir.string() +
                            "' RAMP_CACHE=on RAMP_METRICS=off";
    const std::string cmd = std::string("sweep --trace-len 4000 --jobs ") +
                            jobs + " --stage-cache";
    const fs::path cache = dir / "ramp_sweep_cache.csv";

    // Cold: every stage computes, populating <out-dir>/stage_cache.
    const auto cold = run_cli(cmd, "", env);
    ASSERT_EQ(cold.exit_code, 0);
    ASSERT_TRUE(fs::exists(cache));
    std::stringstream got_cold;
    got_cold << std::ifstream(cache, std::ios::binary).rdbuf();
    EXPECT_EQ(got_cold.str(), want.str())
        << "cold stage-cache sweep diverged at --jobs " << jobs;
    std::size_t blobs = 0;
    ASSERT_TRUE(fs::exists(dir / "stage_cache"));
    for (const auto& e : fs::directory_iterator(dir / "stage_cache")) {
      if (e.path().extension() == ".rampblob") ++blobs;
    }
    EXPECT_GT(blobs, 0u);

    // Warm: drop the sweep-level CSV so the grid re-runs entirely from the
    // persisted stage outputs — still byte-identical.
    fs::remove(cache);
    const auto warm = run_cli(cmd, "", env);
    ASSERT_EQ(warm.exit_code, 0);
    ASSERT_TRUE(fs::exists(cache));
    std::stringstream got_warm;
    got_warm << std::ifstream(cache, std::ios::binary).rdbuf();
    EXPECT_EQ(got_warm.str(), want.str())
        << "warm stage-cache sweep diverged at --jobs " << jobs;
    EXPECT_EQ(warm.output, cold.output);  // stdout table too
    fs::remove_all(dir);
  }
}

TEST(CliTest, StageCacheEnvDoesNotChangeEvaluateOutput) {
  const auto plain = run_cli("evaluate gcc 65-1.0 --trace-len 5000");
  ASSERT_EQ(plain.exit_code, 0);

  const fs::path dir = fs::temp_directory_path() / "ramp_cli_stage_env";
  fs::remove_all(dir);
  const std::string env = "RAMP_STAGE_CACHE='" + dir.string() + "'";
  const auto cold = run_cli("evaluate gcc 65-1.0 --trace-len 5000", "", env);
  ASSERT_EQ(cold.exit_code, 0);
  EXPECT_EQ(cold.output, plain.output);
  EXPECT_TRUE(fs::exists(dir));
  const auto warm = run_cli("evaluate gcc 65-1.0 --trace-len 5000", "", env);
  ASSERT_EQ(warm.exit_code, 0);
  EXPECT_EQ(warm.output, plain.output);
  fs::remove_all(dir);
}

TEST(CliTest, MalformedMetricsSwitchFailsLoudly) {
  const auto r = run_cli("sweep --trace-len 5000 --jobs 2", "",
                         "RAMP_METRICS=banana");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(CliTest, SweepTimelineAndTraceOutProduceArtifacts) {
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_test_flightrec";
  fs::remove_all(dir);
  const fs::path tl_dir = dir / "timeline";
  const fs::path trace = dir / "nested" / "trace.json";  // parent must be made

  const auto plain = run_cli("sweep --trace-len 5000 --jobs 2");
  ASSERT_EQ(plain.exit_code, 0);
  const auto r = run_cli("sweep --trace-len 5000 --jobs 2 --timeline='" +
                         tl_dir.string() + "' --trace-out='" + trace.string() +
                         "'");
  ASSERT_EQ(r.exit_code, 0);
  // Flight recording is purely observational: the sweep table on stdout is
  // byte-for-byte what an unrecorded run prints.
  EXPECT_EQ(r.output, plain.output);

  // One CSV + NDJSON timeline pair per cell (16 apps x 5 nodes).
  std::size_t csvs = 0;
  std::size_t ndjsons = 0;
  for (const auto& e : fs::directory_iterator(tl_dir)) {
    if (e.path().extension() == ".csv") ++csvs;
    if (e.path().extension() == ".ndjson" &&
        e.path().filename() != "incidents.ndjson") {
      ++ndjsons;
    }
  }
  EXPECT_EQ(csvs, 80u);
  EXPECT_EQ(ndjsons, 80u);
  EXPECT_TRUE(fs::exists(tl_dir / "incidents.ndjson"));

  std::stringstream csv_body;
  csv_body << std::ifstream(tl_dir / "gcc_180.csv").rdbuf();
  EXPECT_EQ(csv_body.str().rfind("# ramp_timeline v1 cell=gcc@180 ", 0), 0u);

  // The Chrome trace parses with the vendored codec and carries real slices
  // alongside the process/thread metadata records.
  std::stringstream trace_body;
  trace_body << std::ifstream(trace).rdbuf();
  const serve::Json doc = serve::Json::parse(trace_body.str());
  const serve::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_slice = false;
  for (const auto& ev : events->elements()) {
    if (ev.find("ph")->as_string() == "X") saw_slice = true;
  }
  EXPECT_TRUE(saw_slice);
  fs::remove_all(dir);
}

TEST(CliTest, SweepWritesCacheIntoOutDirNotCwd) {
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_test_outdir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // Cache explicitly enabled (RAMP_CACHE=on overrides the harness default).
  const std::string cmd = "cd '" + dir.string() + "' && RAMP_CACHE=on '"
                          RAMP_CLI_PATH "' sweep --trace-len 5000 --jobs 2"
                          " --out-dir '" + (dir / "artifacts").string() +
                          "' >/dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0);
  EXPECT_TRUE(fs::exists(dir / "artifacts" / "ramp_sweep_cache.csv"));
  EXPECT_FALSE(fs::exists(dir / "ramp_sweep_cache.csv"));
  fs::remove_all(dir);
}

TEST(CliTest, FleetCurveIsJobAndRerunInvariant) {
  const std::string flags =
      "fleet --chips 1500 --trace-len 2000 --seed 7 --bin 5";
  const auto serial = run_cli(flags + " --jobs 1");
  ASSERT_EQ(serial.exit_code, 0);
  EXPECT_EQ(serial.output.rfind("# ramp_fleet v1\n", 0), 0u);
  EXPECT_NE(serial.output.find("t_end_years,failures,survivors"),
            std::string::npos);
  // 30-year horizon in 5-year bins: 2 comments + header + 6 rows.
  EXPECT_EQ(std::count(serial.output.begin(), serial.output.end(), '\n'), 9);

  const auto parallel = run_cli(flags + " --jobs 4");
  ASSERT_EQ(parallel.exit_code, 0);
  EXPECT_EQ(serial.output, parallel.output);
  EXPECT_EQ(serial.output, run_cli(flags + " --jobs 4").output);
  // A different seed is a different fleet.
  EXPECT_NE(serial.output,
            run_cli("fleet --chips 1500 --trace-len 2000 --seed 8 --bin 5")
                .output);
}

TEST(CliTest, FleetWritesArtifactsAndAbDeltas) {
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_test_fleet";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // Scenario passed positionally (`--scenario baseline` also works).
  const auto r = run_cli(
      "fleet baseline --chips 800 --trace-len 2000 --policy dvfs --ab none "
      "--out-dir '" + dir.string() + "'");
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("# ramp_fleet_ab v1"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir / "fleet_curve.csv"));
  EXPECT_TRUE(fs::exists(dir / "fleet.ndjson"));
  EXPECT_TRUE(fs::exists(dir / "fleet_ab.csv"));
  std::stringstream nd;
  nd << std::ifstream(dir / "fleet.ndjson").rdbuf();
  EXPECT_EQ(nd.str().rfind("{\"type\":\"summary\"", 0), 0u);
  fs::remove_all(dir);
}

TEST(CliTest, FleetRejectsGarbage) {
  EXPECT_EQ(run_cli("fleet --chips twelve").exit_code, 1);
  EXPECT_EQ(run_cli("fleet --years zero").exit_code, 1);
  EXPECT_EQ(run_cli("fleet --policy turbo").exit_code, 1);
  EXPECT_EQ(run_cli("fleet --scenario warp-core").exit_code, 1);
  EXPECT_EQ(run_cli("fleet warp-core").exit_code, 1);  // positional scenario
  EXPECT_EQ(run_cli("fleet --frobnicate").exit_code, 2);
  // Strict RAMP_FLEET_* environment: garbage throws instead of defaulting.
  EXPECT_EQ(run_cli("fleet", "", "RAMP_FLEET_CHIPS=ten").exit_code, 1);
  EXPECT_EQ(run_cli("fleet", "", "RAMP_FLEET_POLICY=turbo").exit_code, 1);
}

// ---- Serving: fleet op, client death, signals, TCP, sharding ---------------

/// Writes `body` to a scratch script and runs `bash script <args...>`.
/// Returns the script's exit code (-1 if it died on a signal).
int run_bash(const std::string& body, const std::vector<std::string>& args) {
  static int seq = 0;
  const fs::path script = fs::temp_directory_path() /
                          ("ramp_cli_script_" + std::to_string(::getpid()) +
                           "_" + std::to_string(seq++) + ".sh");
  std::ofstream(script) << body;
  std::string cmd = "bash '" + script.string() + "'";
  for (const std::string& a : args) cmd += " '" + a + "'";
  const int status = std::system(cmd.c_str());
  fs::remove(script);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CliTest, ServeFleetOpOverStdio) {
  const std::string request =
      "{\"op\":\"fleet\",\"chips\":64,\"years\":6,\"bin\":2,\"seed\":3,"
      "\"id\":9}\n{\"op\":\"shutdown\"}\n";
  const auto r =
      run_cli("serve --trace-len 2000 --jobs 2 --no-persist", request);
  ASSERT_EQ(r.exit_code, 0);

  std::istringstream lines(r.output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const serve::Json fleet = serve::Json::parse(line);
  EXPECT_TRUE(fleet.find("ok")->as_bool()) << line;
  EXPECT_EQ(fleet.find("op")->as_string(), "fleet");
  EXPECT_DOUBLE_EQ(fleet.find("id")->as_number(), 9.0);
  ASSERT_NE(fleet.find("summary"), nullptr);
  EXPECT_DOUBLE_EQ(fleet.find("summary")->find("chips")->as_number(), 64.0);
  ASSERT_NE(fleet.find("curve"), nullptr);
  EXPECT_EQ(fleet.find("curve")->elements().size(), 3u);  // 6 y / 2 y bins

  // Same seed, same scenario: the simulation is deterministic over the wire.
  const auto again =
      run_cli("serve --trace-len 2000 --jobs 2 --no-persist", request);
  ASSERT_EQ(again.exit_code, 0);
  EXPECT_EQ(again.output, r.output);

  // Bounds are enforced before any work happens.
  const auto huge = run_cli(
      "serve --trace-len 2000 --no-persist",
      "{\"op\":\"fleet\",\"chips\":999999999}\n{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(huge.exit_code, 0);
  ASSERT_FALSE(huge.output.empty());
  std::istringstream huge_lines(huge.output);
  std::string huge_line;
  ASSERT_TRUE(std::getline(huge_lines, huge_line));
  EXPECT_FALSE(serve::Json::parse(huge_line).find("ok")->as_bool());
}

TEST(CliTest, ServeSurvivesClientDeathMidStream) {
  // The satellite regression: a client that reads one line and dies used to
  // kill serve with SIGPIPE (exit 141). Now EPIPE on stdout is a clean
  // shutdown. 200 pipelined responses overflow the 64 KiB pipe buffer, so
  // the write after `head` exits MUST hit the dead pipe.
  const std::string script = R"SH(
set -u
ramp=$1; dir=$2
req='{"op":"eval","app":"gcc","node":"90","trace_len":2000}'
{ for i in $(seq 1 200); do echo "$req"; done; } > "$dir/reqs.ndjson"
"$ramp" serve --trace-len 2000 --no-persist < "$dir/reqs.ndjson" 2>/dev/null \
  | head -n 1 > /dev/null
exit "${PIPESTATUS[0]}"
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_epipe";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_EQ(run_bash(script, {RAMP_CLI_PATH, dir.string()}), 0)
      << "serve must exit 0 when its client dies mid-stream";
  fs::remove_all(dir);
}

TEST(CliTest, ServeSigintDrainsGracefully) {
  // SIGINT mid-stream (client still connected, more input possibly coming)
  // is a graceful drain: answer what was read, flush, exit 0.
  const std::string script = R"SH(
set -u
ramp=$1; dir=$2
mkfifo "$dir/in"
"$ramp" serve --trace-len 2000 --no-persist < "$dir/in" \
  > "$dir/out.ndjson" 2>/dev/null &
pid=$!
exec 3> "$dir/in"
printf '{"op":"eval","app":"gcc","node":"90","trace_len":2000}\n' >&3
# Wait for the response so the kill provably lands mid-stream, not pre-work.
for i in $(seq 1 100); do [ -s "$dir/out.ndjson" ] && break; sleep 0.1; done
kill -INT "$pid"
wait "$pid"; rc=$?
exec 3>&-
exit "$rc"
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_sigint";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_EQ(run_bash(script, {RAMP_CLI_PATH, dir.string()}), 0)
      << "SIGINT must drain and exit 0, not die with 130";
  // The answered request made it out before the drain.
  std::stringstream out;
  out << std::ifstream(dir / "out.ndjson").rdbuf();
  EXPECT_NE(out.str().find("\"ok\":true"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CliTest, ServeTcpAnswersMatchAndDrainOnShutdownOp) {
  // End-to-end TCP mode through the real binary: bash's /dev/tcp talks to
  // `serve --listen`, the answer matches the stdio answer for the same
  // request, and the `shutdown` op drains the process to exit 0.
  const std::string script = R"SH(
set -u
ramp=$1; dir=$2
"$ramp" serve --listen 127.0.0.1:0 --port-file "$dir/port" --trace-len 2000 \
  --out-dir "$dir/out" > /dev/null 2>&1 &
pid=$!
for i in $(seq 1 100); do [ -s "$dir/port" ] && break; sleep 0.1; done
port=$(cat "$dir/port")
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf '{"op":"eval","app":"gcc","node":"90","trace_len":2000,"id":1}\n' >&3
IFS= read -r line <&3
printf '%s\n' "$line" > "$dir/tcp_answer"
printf '{"op":"shutdown"}\n' >&3
IFS= read -r bye <&3
exec 3<&- 3>&-
wait "$pid"
exit $?
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_tcp";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_EQ(run_bash(script, {RAMP_CLI_PATH, dir.string()}), 0);

  std::stringstream tcp;
  tcp << std::ifstream(dir / "tcp_answer").rdbuf();
  ASSERT_FALSE(tcp.str().empty());
  const serve::Json answer = serve::Json::parse(tcp.str());
  EXPECT_TRUE(answer.find("ok")->as_bool());

  const auto stdio = run_cli(
      "serve --trace-len 2000 --no-persist",
      "{\"op\":\"eval\",\"app\":\"gcc\",\"node\":\"90\",\"trace_len\":2000,"
      "\"id\":1}\n{\"op\":\"shutdown\"}\n");
  ASSERT_EQ(stdio.exit_code, 0);
  std::istringstream lines(stdio.output);
  std::string stdio_line;
  ASSERT_TRUE(std::getline(lines, stdio_line));
  // Byte-identical result payloads (the `cached` provenance flag may differ
  // between a cold stdio service and the TCP server's persist dir).
  const serve::Json expected = serve::Json::parse(stdio_line);
  ASSERT_NE(answer.find("result"), nullptr);
  ASSERT_NE(expected.find("result"), nullptr);
  EXPECT_EQ(answer.find("result")->dump(), expected.find("result")->dump());
  EXPECT_EQ(answer.find("key")->as_string(),
            expected.find("key")->as_string());
  fs::remove_all(dir);
}

TEST(CliTest, ShardedServeRoutesKeysToDisjointCaches) {
  // Two shard workers, one front. Each eval key must persist in exactly one
  // shard's cache directory — the consistent-hash routing is what makes the
  // per-key single-flight guarantee hold fleet-wide.
  const std::string script = R"SH(
set -u
ramp=$1; dir=$2
RAMP_CACHE=on "$ramp" serve --listen 127.0.0.1:0 --shards 2 \
  --port-file "$dir/port" --trace-len 2000 --out-dir "$dir/out" \
  > /dev/null 2>&1 &
pid=$!
for i in $(seq 1 100); do [ -s "$dir/port" ] && break; sleep 0.1; done
port=$(cat "$dir/port")
# 180 nm keys only: a scaled node would drag the shared 180 nm base-run
# entry into BOTH shard caches as a dependency and muddy the disjointness
# check; at 180 nm each key's dependency closure is itself.
for app in gcc gzip twolf crafty ammp mesa; do
  exec 3<> "/dev/tcp/127.0.0.1/$port"
  printf '{"op":"eval","app":"%s","node":"180","trace_len":2000}\n' \
    "$app" >&3
  IFS= read -r line <&3 || exit 3
  case "$line" in *'"ok":true'*) ;; *) echo "$line"; exit 4 ;; esac
  exec 3<&- 3>&-
done
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf '{"op":"shutdown"}\n' >&3
IFS= read -r bye <&3 || true
exec 3<&- 3>&-
wait "$pid"
exit $?
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_shards";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_EQ(run_bash(script, {RAMP_CLI_PATH, dir.string()}), 0);

  // Both shards persisted something, and no blob digest appears in both —
  // the keyspace split is real, not cosmetic.
  std::vector<std::string> shard0, shard1;
  for (const auto& e :
       fs::directory_iterator(dir / "out" / "serve_cache" / "shard-0")) {
    shard0.push_back(e.path().filename().string());
  }
  for (const auto& e :
       fs::directory_iterator(dir / "out" / "serve_cache" / "shard-1")) {
    shard1.push_back(e.path().filename().string());
  }
  EXPECT_FALSE(shard0.empty());
  EXPECT_FALSE(shard1.empty());
  for (const std::string& f : shard0) {
    EXPECT_EQ(std::find(shard1.begin(), shard1.end(), f), shard1.end())
        << f << " persisted in both shards";
  }
  fs::remove_all(dir);
}

TEST(CliTest, ShardedMetricsMergeAnswersForTheWholeFleet) {
  // A `metrics` op against the front must merge every worker's registry —
  // counters summed, histogram buckets summed — because each shard only
  // ever saw its slice of the keyspace. `health` is the front's own.
  const std::string script = R"SH(
set -u
ramp=$1; dir=$2
"$ramp" serve --listen 127.0.0.1:0 --shards 2 --port-file "$dir/port" \
  --trace-len 2000 --out-dir "$dir/out" --no-persist > /dev/null 2>&1 &
pid=$!
for i in $(seq 1 100); do [ -s "$dir/port" ] && break; sleep 0.1; done
port=$(cat "$dir/port")
# Six distinct 180 nm keys: the consistent hash spreads them over both
# workers, so the merged totals can only be right if the merge is real.
for app in gcc gzip twolf crafty ammp mesa; do
  exec 3<> "/dev/tcp/127.0.0.1/$port"
  printf '{"op":"eval","app":"%s","node":"180","trace_len":2000}\n' \
    "$app" >&3
  IFS= read -r line <&3 || exit 3
  case "$line" in *'"ok":true'*) ;; *) echo "$line"; exit 4 ;; esac
  exec 3<&- 3>&-
done
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf '{"op":"health","id":"h"}\n' >&3
IFS= read -r health <&3 || exit 5
printf '%s\n' "$health" > "$dir/health.json"
printf '{"op":"metrics","id":"m"}\n' >&3
IFS= read -r metrics <&3 || exit 6
printf '%s\n' "$metrics" > "$dir/metrics.json"
printf '{"op":"metrics","format":"json","id":"mj"}\n' >&3
IFS= read -r snap <&3 || exit 7
printf '%s\n' "$snap" > "$dir/snapshot.json"
printf '{"op":"shutdown"}\n' >&3
IFS= read -r bye <&3 || true
exec 3<&- 3>&-
wait "$pid"
exit $?
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_shard_metrics";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_EQ(run_bash(script, {RAMP_CLI_PATH, dir.string()}), 0);

  std::stringstream health_body;
  health_body << std::ifstream(dir / "health.json").rdbuf();
  const serve::Json health = serve::Json::parse(health_body.str());
  EXPECT_TRUE(health.find("ok")->as_bool());
  EXPECT_EQ(health.find("mode")->as_string(), "front");
  EXPECT_EQ(health.find("shards")->as_number(), 2.0);
  EXPECT_FALSE(health.find("draining")->as_bool());

  std::stringstream metrics_body;
  metrics_body << std::ifstream(dir / "metrics.json").rdbuf();
  const serve::Json metrics = serve::Json::parse(metrics_body.str());
  ASSERT_TRUE(metrics.find("ok")->as_bool());
  EXPECT_EQ(metrics.find("id")->as_string(), "m");
  const auto samples =
      obs::parse_prometheus_text(metrics.find("prometheus")->as_string());
  // The fleet-wide totals: 6 eval requests split across two workers.
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_requests_total"), 6.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_latency_seconds_count"), 6.0);
  // Both workers contributed transport metrics (the per-shard upstream
  // connection from the front, at minimum).
  EXPECT_GE(samples.at("ramp_net_connections_accepted"), 2.0);

  std::stringstream snap_body;
  snap_body << std::ifstream(dir / "snapshot.json").rdbuf();
  const serve::Json snap = serve::Json::parse(snap_body.str());
  ASSERT_TRUE(snap.find("ok")->as_bool());
  const serve::Json* snapshot = snap.find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  ASSERT_NE(snapshot->find("counters"), nullptr);
  EXPECT_DOUBLE_EQ(
      snapshot->find("counters")->find("ramp_serve_requests_total")
          ->as_number(),
      6.0);
  fs::remove_all(dir);
}

TEST(CliTest, LoadgenDrivesTcpServeEndToEnd) {
  // The benchmark harness path: serve --listen + ramp_loadgen closed loop.
  // Zero errors, everything sent gets answered, and SIGTERM drains to 0.
  const std::string script = R"SH(
set -u
ramp=$1; loadgen=$2; dir=$3
"$ramp" serve --listen 127.0.0.1:0 --port-file "$dir/port" --trace-len 2000 \
  --out-dir "$dir/out" > /dev/null 2>&1 &
pid=$!
"$loadgen" --port-file "$dir/port" --mode closed --connections 4 \
  --duration 2 --trace-len 2000 > "$dir/loadgen.json" || exit 5
kill -TERM "$pid"
wait "$pid"
exit $?
)SH";
  const fs::path dir = fs::temp_directory_path() / "ramp_cli_loadgen";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_EQ(run_bash(script,
                     {RAMP_CLI_PATH, RAMP_LOADGEN_PATH, dir.string()}),
            0);

  std::stringstream body;
  body << std::ifstream(dir / "loadgen.json").rdbuf();
  const serve::Json summary = serve::Json::parse(body.str());
  EXPECT_GT(summary.find("sent")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(summary.find("completed")->as_number(),
                   summary.find("sent")->as_number());
  EXPECT_DOUBLE_EQ(summary.find("errors")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(summary.find("overloaded")->as_number(), 0.0);
  EXPECT_GT(summary.find("p99_ms")->as_number(), 0.0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ramp
