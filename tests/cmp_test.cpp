// Tests for the CMP (multicore) extension: layout, thermal coupling, and
// activity migration.
#include <gtest/gtest.h>

#include "cmp/cmp_evaluator.hpp"
#include "thermal/rc_model.hpp"
#include "util/error.hpp"

namespace ramp::cmp {
namespace {

TEST(CmpLayoutTest, TilesTheRightNumberOfBlocks) {
  const CmpLayout layout = make_cmp_layout(4, 0.5);
  EXPECT_EQ(layout.cores(), 4);
  EXPECT_EQ(layout.floorplan.size(), 4u * sim::kNumStructures);
  // Total area = 4 x scaled single-core area.
  EXPECT_NEAR(layout.floorplan.total_area(), 4 * 81e-6 * 0.25, 1e-9);
}

TEST(CmpLayoutTest, BlockMapsResolveCorrectNames) {
  const CmpLayout layout = make_cmp_layout(2, 1.0);
  for (int c = 0; c < 2; ++c) {
    for (int s = 0; s < sim::kNumStructures; ++s) {
      const auto idx =
          layout.core_blocks[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)];
      const auto& name = layout.floorplan.block(idx).name;
      EXPECT_EQ(name, "C" + std::to_string(c) + ":" +
                          std::string(sim::structure_name(
                              static_cast<sim::StructureId>(s))));
    }
  }
}

TEST(CmpLayoutTest, AdjacentTilesShareEdgesWithoutGap) {
  const CmpLayout layout = make_cmp_layout(4, 0.5, /*gap_m=*/0.0);
  // There must be adjacencies between blocks of different cores.
  bool cross_core = false;
  for (const auto& adj : layout.floorplan.adjacencies()) {
    const auto& a = layout.floorplan.block(adj.a).name;
    const auto& b = layout.floorplan.block(adj.b).name;
    if (a.substr(0, 2) != b.substr(0, 2)) cross_core = true;
  }
  EXPECT_TRUE(cross_core);
}

TEST(CmpLayoutTest, RejectsBadArguments) {
  EXPECT_THROW(make_cmp_layout(0, 1.0), InvalidArgument);
  EXPECT_THROW(make_cmp_layout(4, -1.0), InvalidArgument);
}

TEST(CmpThermalTest, HotCoreWarmsIdleNeighborThroughSilicon) {
  const CmpLayout layout = make_cmp_layout(2, 0.5, 0.0);
  const thermal::RcNetwork net(layout.floorplan, {});
  std::vector<double> p(layout.floorplan.size(), 0.0);
  // Power only core 0.
  for (const auto blk : layout.core_blocks[0]) p[blk] = 3.0;
  const auto t = net.steady_state(p);
  // Core 1 is unpowered but must sit above ambient (coupling through
  // silicon and the shared sink).
  for (const auto blk : layout.core_blocks[1]) {
    EXPECT_GT(t[blk], net.ambient() + 1.0);
  }
  // And strictly cooler than core 0's matching structures.
  for (int s = 0; s < sim::kNumStructures; ++s) {
    EXPECT_GT(t[layout.core_blocks[0][static_cast<std::size_t>(s)]],
              t[layout.core_blocks[1][static_cast<std::size_t>(s)]]);
  }
}

CmpConfig quick_cfg() {
  CmpConfig cfg;
  cfg.cores = 4;
  cfg.cell.trace_instructions = 15'000;
  cfg.duration_seconds = 1.5e-3;
  cfg.epoch_seconds = 300e-6;
  return cfg;
}

TEST(CmpEvaluatorTest, AsymmetricLoadShowsPerCoreSpread) {
  const CmpEvaluator ev(quick_cfg(), scaling::TechPoint::k65nm_1V0);
  // One hot app, three idle cores.
  const std::vector<workloads::Workload> apps = {workloads::workload("crafty")};
  const auto r = ev.evaluate(apps, /*migrate=*/false);
  ASSERT_EQ(r.cores.size(), 4u);
  // The loaded core is hotter and wears faster than the idle ones.
  EXPECT_GT(r.cores[0].avg_temp_k, r.cores[2].avg_temp_k + 1.0);
  EXPECT_GT(r.cores[0].raw_fits.total(), r.cores[2].raw_fits.total());
  EXPECT_GT(r.worst_core_raw_fit(), r.best_core_raw_fit());
}

TEST(CmpEvaluatorTest, MigrationLevelsWearAcrossCores) {
  const CmpEvaluator ev(quick_cfg(), scaling::TechPoint::k65nm_1V0);
  const std::vector<workloads::Workload> apps = {workloads::workload("crafty")};
  const auto pinned = ev.evaluate(apps, false);
  const auto hopped = ev.evaluate(apps, true);
  EXPECT_GT(hopped.migrations, 0u);
  // Wear-leveling: the worst core's FIT drops under migration.
  EXPECT_LT(hopped.worst_core_raw_fit(), pinned.worst_core_raw_fit());
  // And the spread between cores tightens substantially.
  const double spread_pinned =
      pinned.worst_core_raw_fit() / pinned.best_core_raw_fit();
  const double spread_hopped =
      hopped.worst_core_raw_fit() / hopped.best_core_raw_fit();
  EXPECT_LT(spread_hopped, spread_pinned);
}

TEST(CmpEvaluatorTest, FullyLoadedChipSumsCoreFits) {
  const CmpEvaluator ev(quick_cfg(), scaling::TechPoint::k90nm);
  const std::vector<workloads::Workload> apps = {
      workloads::workload("crafty"), workloads::workload("ammp"),
      workloads::workload("gzip"), workloads::workload("mgrid")};
  const auto r = ev.evaluate(apps, false);
  double sum = 0.0;
  for (const auto& c : r.cores) sum += c.raw_fits.total();
  EXPECT_NEAR(r.chip_raw_fit, sum, sum * 1e-12);
  EXPECT_GT(r.avg_power_w, 10.0);
  EXPECT_GT(r.sink_temp_k, 318.15);
}

TEST(CmpEvaluatorTest, DeterministicAcrossRuns) {
  const CmpEvaluator ev(quick_cfg(), scaling::TechPoint::k130nm);
  const std::vector<workloads::Workload> apps = {workloads::workload("gcc"),
                                                 workloads::workload("mesa")};
  const auto a = ev.evaluate(apps, true);
  const auto b = ev.evaluate(apps, true);
  EXPECT_DOUBLE_EQ(a.chip_raw_fit, b.chip_raw_fit);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(CmpEvaluatorTest, RejectsBadInputs) {
  EXPECT_THROW(CmpEvaluator({.cores = 0}, scaling::TechPoint::k90nm),
               InvalidArgument);
  const CmpEvaluator ev(quick_cfg(), scaling::TechPoint::k90nm);
  EXPECT_THROW(ev.evaluate({}, false), InvalidArgument);
  const std::vector<workloads::Workload> too_many(
      5, workloads::workload("gcc"));
  EXPECT_THROW(ev.evaluate(too_many, false), InvalidArgument);
}

}  // namespace
}  // namespace ramp::cmp
