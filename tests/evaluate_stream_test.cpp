// Tests for the stream-based evaluation API and transient recording.
#include <gtest/gtest.h>

#include "pipeline/evaluator.hpp"
#include "trace/phased_trace.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/error.hpp"

namespace ramp::pipeline {
namespace {

EvaluationConfig quick_config() {
  EvaluationConfig cfg;
  cfg.trace_instructions = 25'000;
  return cfg;
}

TEST(EvaluateStreamTest, MatchesWorkloadEvaluationForSameTrace) {
  // evaluate() is a thin wrapper over evaluate_stream(); feeding the same
  // synthetic stream manually must give identical results.
  const Evaluator ev(quick_config());
  const auto& w = workloads::workload("mesa");
  const auto via_workload = ev.evaluate(w, scaling::TechPoint::k130nm);

  // Recreate the exact trace the wrapper builds (same seed derivation is
  // internal, so instead compare against a fixed-seed stream both ways).
  trace::SyntheticTrace s1(w.profile, quick_config().trace_instructions, 99);
  const auto a = ev.evaluate_stream(s1, "mesa-manual", w.power_bias,
                                    scaling::TechPoint::k130nm);
  trace::SyntheticTrace s2(w.profile, quick_config().trace_instructions, 99);
  const auto b = ev.evaluate_stream(s2, "mesa-manual", w.power_bias,
                                    scaling::TechPoint::k130nm);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.raw_fits.total(), b.raw_fits.total());
  // And the wrapper's result is statistically consistent (same profile,
  // different seed): within a few percent.
  EXPECT_NEAR(a.ipc, via_workload.ipc, via_workload.ipc * 0.1);
}

TEST(EvaluateStreamTest, LabelCarriesThrough) {
  const Evaluator ev(quick_config());
  trace::SyntheticTrace s(workloads::workload("gzip").profile, 25'000, 3);
  const auto r =
      ev.evaluate_stream(s, "my-label", 1.0, scaling::TechPoint::k180nm);
  EXPECT_EQ(r.app, "my-label");
}

TEST(EvaluateStreamTest, IntervalTraceEmptyByDefault) {
  const Evaluator ev(quick_config());
  const auto r =
      ev.evaluate(workloads::workload("vpr"), scaling::TechPoint::k180nm);
  EXPECT_TRUE(r.interval_trace.empty());
}

TEST(EvaluateStreamTest, IntervalTraceRecordsWhenEnabled) {
  EvaluationConfig cfg = quick_config();
  cfg.record_intervals = true;
  const Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("vpr"), scaling::TechPoint::k180nm);
  ASSERT_FALSE(r.interval_trace.empty());
  double prev_t = 0.0;
  for (const auto& s : r.interval_trace) {
    EXPECT_GT(s.time_s, prev_t);  // strictly increasing timestamps
    prev_t = s.time_s;
    EXPECT_GT(s.hottest_temp_k, 318.0);
    EXPECT_GT(s.total_power_w, 1.0);
    EXPECT_GE(s.ipc, 0.0);
  }
}

TEST(EvaluateStreamTest, QualifiedSampleAverageTracksRunSummary) {
  // The time-average of the recorded instantaneous qualified FITs must
  // reproduce the run's qualified summary (same averaging, by
  // construction; this guards the per-sample bookkeeping).
  EvaluationConfig cfg = quick_config();
  cfg.record_intervals = true;
  const Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("gap"), scaling::TechPoint::k90nm);
  core::MechanismConstants k;
  k.em = 2.0;
  k.sm = 3.0;
  k.tddb = 5.0;
  k.tc = 7.0;
  // Time-weighted average of samples (equal interval durations except the
  // tail, so weight by the time deltas).
  double weighted = 0.0, total_time = 0.0, prev_t = 0.0;
  for (const auto& s : r.interval_trace) {
    const double dt = s.time_s - prev_t;
    weighted += s.qualified_total(k) * dt;
    total_time += dt;
    prev_t = s.time_s;
  }
  const double expect = scale_summary(r.raw_fits, k).total();
  EXPECT_NEAR(weighted / total_time, expect, expect * 1e-6);
}

TEST(EvaluateStreamTest, PhasedStreamWorksEndToEnd) {
  const Evaluator ev(quick_config());
  trace::GeneratorProfile a = workloads::workload("crafty").profile;
  trace::GeneratorProfile b = workloads::workload("ammp").profile;
  trace::PhasedTrace phased({a, b}, 25'000, 5'000, 4);
  const auto r =
      ev.evaluate_stream(phased, "phased", 1.0, scaling::TechPoint::k65nm_1V0);
  EXPECT_GT(r.ipc, 0.3);
  EXPECT_GT(r.raw_fits.total(), 0.0);
}

TEST(EvaluateStreamTest, RejectsNonPositiveBias) {
  const Evaluator ev(quick_config());
  trace::SyntheticTrace s(workloads::workload("gzip").profile, 1000, 5);
  EXPECT_THROW(
      ev.evaluate_stream(s, "x", 0.0, scaling::TechPoint::k180nm),
      InvalidArgument);
}

TEST(EvaluateStreamTest, IntervalTraceAndTimelineShareInstantaneousFit) {
  // Regression: with both the interval trace and the timeline enabled, the
  // instantaneous FIT used to be computed twice per interval (identical
  // inputs, double the cost). It is now computed once and shared — and the
  // two consumers must agree bit for bit.
  EvaluationConfig cfg = quick_config();
  cfg.record_intervals = true;
  cfg.timeline_enabled = true;
  cfg.timeline_points = 1u << 20;  // keep every interval (no downsampling)
  const Evaluator ev(cfg);
  const auto r =
      ev.evaluate(workloads::workload("gzip"), scaling::TechPoint::k65nm_1V0);
  ASSERT_FALSE(r.interval_trace.empty());
  ASSERT_FALSE(r.timeline.empty());
  ASSERT_EQ(r.timeline.points.size(), r.interval_trace.size());
  for (const auto& point : r.timeline.points) {
    const auto& sample = r.interval_trace.at(
        static_cast<std::size_t>(point.interval));
    ASSERT_EQ(point.fit_inst.size(),
              static_cast<std::size_t>(core::kNumMechanisms));
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      EXPECT_EQ(point.fit_inst[mi], sample.raw_mechanism_fit[mi])
          << "interval " << point.interval << " mechanism " << m;
    }
  }
}

}  // namespace
}  // namespace ramp::pipeline
