// Unit tests for the bounded LRU cache backing the EvalService.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/error.hpp"
#include "util/lru_cache.hpp"

namespace ramp {
namespace {

TEST(LruCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), InvalidArgument);
}

TEST(LruCacheTest, GetReturnsNullOnMiss) {
  LruCache<std::string, int> cache(2);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(LruCacheTest, PutThenGetRoundtrips) {
  LruCache<std::string, int> cache(2);
  EXPECT_EQ(cache.put("a", 1), 0u);
  ASSERT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(*cache.get("a"), 1);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, PutExistingKeyUpdatesWithoutEviction) {
  LruCache<std::string, int> cache(1);
  cache.put("a", 1);
  EXPECT_EQ(cache.put("a", 2), 0u);
  EXPECT_EQ(*cache.get("a"), 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(cache.put("c", 3), 1u);  // evicts "a"
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
}

TEST(LruCacheTest, GetTouchesEntryToMostRecent) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  ASSERT_NE(cache.get("a"), nullptr);  // "b" is now the LRU entry
  cache.put("c", 3);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
}

TEST(LruCacheTest, CapacityOneCyclesThroughKeys) {
  LruCache<int, int> cache(1);
  std::size_t evictions = 0;
  for (int i = 0; i < 10; ++i) evictions += cache.put(i, i * i);
  EXPECT_EQ(evictions, 9u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(9), 81);
}

TEST(LruCacheTest, SnapshotListsLeastRecentFirst) {
  LruCache<std::string, int> cache(3);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  cache.get("a");
  const auto entries = cache.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  auto it = entries.begin();
  EXPECT_EQ(it->first, "b");
  EXPECT_EQ((++it)->first, "c");
  EXPECT_EQ((++it)->first, "a");
}

TEST(LruCacheTest, SharedPtrValuesAliasNotCopy) {
  LruCache<std::string, std::shared_ptr<int>> cache(2);
  auto value = std::make_shared<int>(7);
  cache.put("k", value);
  auto* stored = cache.get("k");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->get(), value.get());
}

}  // namespace
}  // namespace ramp
