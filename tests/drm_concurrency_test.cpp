// Shared-state audit regression for the DRM layer (run under TSan via the
// `concurrency` ctest label). DrmController and ThermalSensor keep all
// state per-instance — no globals, no statics, no shared caches — so many
// independent controller/sensor loops running on pool threads must produce
// exactly the sequences a serial run produces. A hidden global (e.g. a
// shared RNG or a memoized table) would show up here as a TSan race or a
// sequence mismatch under --jobs N.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "drm/drm_controller.hpp"
#include "drm/thermal_sensor.hpp"
#include "scaling/technology.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ramp::drm {
namespace {

// One deterministic closed-loop run: a sensor watching a noisy temperature
// schedule and a controller stepping the ladder on the implied FIT signal.
// Returns every decision and reading so comparisons are exact.
std::vector<double> run_loop(std::uint64_t seed) {
  const auto node = scaling::node(scaling::TechPoint::k130nm);
  DrmConfig cfg;
  cfg.fit_budget = 4000.0;
  DrmController ctrl(cfg, dvfs_ladder(node, 4));
  ThermalSensor sensor(SensorConfig{}, seed);
  Xoshiro256 stimulus(stream_seed(seed, 99));

  std::vector<double> trail;
  trail.reserve(3 * 200);
  for (int i = 0; i < 200; ++i) {
    const double junction_k = 340.0 + 30.0 * stimulus.uniform();
    const double reading = sensor.read(junction_k, 20e-6);
    // A toy FIT signal that swings around the budget with temperature.
    const double fit = 4000.0 * (1.0 + (reading - 355.0) / 40.0);
    const DrmDecision d = ctrl.update(fit, 20e-6);
    trail.push_back(reading);
    trail.push_back(static_cast<double>(d.point_index));
    trail.push_back(d.avg_fit);
  }
  trail.push_back(static_cast<double>(ctrl.switches()));
  trail.push_back(ctrl.average_performance());
  return trail;
}

TEST(DrmConcurrencyTest, ParallelLoopsMatchSerialLoops) {
  constexpr int kLoops = 16;
  std::vector<std::vector<double>> serial;
  serial.reserve(kLoops);
  for (int i = 0; i < kLoops; ++i) {
    serial.push_back(run_loop(static_cast<std::uint64_t>(i)));
  }

  ThreadPool pool(4);
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kLoops);
  for (int i = 0; i < kLoops; ++i) {
    futures.push_back(
        pool.submit([i] { return run_loop(static_cast<std::uint64_t>(i)); }));
  }
  for (int i = 0; i < kLoops; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
              serial[static_cast<std::size_t>(i)])
        << "loop " << i;
  }
}

TEST(DrmConcurrencyTest, RepeatedParallelRunsAreStable) {
  ThreadPool pool(4);
  const auto once = [&pool] {
    std::vector<std::future<std::vector<double>>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit(
          [i] { return run_loop(static_cast<std::uint64_t>(i) + 100); }));
    }
    std::vector<std::vector<double>> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace ramp::drm
