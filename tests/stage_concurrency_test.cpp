// Single-flight and shared-store concurrency tests for the stage graph:
// concurrent get_or_compute() calls for one key coalesce onto a single
// computation, exceptions propagate to every waiter, and a StageStore
// shared across a parallel sweep stays byte-identical to the serial
// monolithic path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/stage_graph.hpp"
#include "pipeline/sweep.hpp"
#include "util/blob_store.hpp"

namespace ramp::pipeline {
namespace {

constexpr int kThreads = 8;

TEST(StageConcurrencyTest, SingleFlightComputesExactlyOnce) {
  BlobStore store;
  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  std::vector<BlobStore::Result> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      started.fetch_add(1);
      results[i] = store.get_or_compute("key", [&] {
        // Give the other threads time to pile onto the in-flight future.
        while (started.load() < kThreads) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        computes.fetch_add(1);
        return std::string("payload");
      });
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  int computed = 0;
  for (const auto& r : results) {
    ASSERT_NE(r.blob, nullptr);
    EXPECT_EQ(*r.blob, "payload");
    if (r.outcome == BlobStore::Outcome::kComputed) ++computed;
  }
  EXPECT_EQ(computed, 1);
}

TEST(StageConcurrencyTest, StageStoreBooksOneMissAndSevenHits) {
  obs::MetricsRegistry reg(true);
  StageStore::Options opts;
  opts.registry = &reg;
  StageStore store(std::move(opts));
  const StageKey key{"trace.v1|test-single-flight"};

  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      const std::function<TraceStageOut()> compute = [&] {
        while (started.load() < kThreads) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        computes.fetch_add(1);
        return TraceStageOut{key.canonical};
      };
      const TraceStageOut out =
          store.get_or_compute<TraceStageOut>(StageId::kTrace, key, compute);
      EXPECT_EQ(out.spec, key.canonical);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(reg.counter("ramp_stage_trace_misses_total").value(), 1u);
  EXPECT_EQ(reg.counter("ramp_stage_trace_hits_total").value(),
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(reg.gauge("ramp_stage_store_entries").value(), 1.0);
}

TEST(StageConcurrencyTest, DistinctKeysComputeIndependently) {
  BlobStore store;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const std::string key = "key-" + std::to_string(i);
      const auto r = store.get_or_compute(key, [&] {
        computes.fetch_add(1);
        return "payload-" + std::to_string(i);
      });
      EXPECT_EQ(*r.blob, "payload-" + std::to_string(i));
      EXPECT_EQ(r.outcome, BlobStore::Outcome::kComputed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), kThreads);
  EXPECT_EQ(store.memory_entries(), static_cast<std::size_t>(kThreads));
}

TEST(StageConcurrencyTest, ComputeExceptionReachesEveryWaiter) {
  BlobStore store;
  std::atomic<int> started{0};
  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      try {
        store.get_or_compute("key", [&]() -> std::string {
          while (started.load() < kThreads) std::this_thread::yield();
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("stage failed");
        });
      } catch (const std::runtime_error&) {
        threw.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every caller of the failed flight sees the exception (late arrivals may
  // start a fresh flight and fail independently — either way they throw).
  EXPECT_EQ(threw.load(), kThreads);
  // The failure left no entry behind; the key is computable afterwards.
  const auto r = store.get_or_compute("key", [] { return std::string("ok"); });
  EXPECT_EQ(r.outcome, BlobStore::Outcome::kComputed);
  EXPECT_EQ(*r.blob, "ok");
}

TEST(StageConcurrencyTest, SharedStoreParallelSweepMatchesMonolithicSerial) {
  // The byte-identity contract under contention: a four-job sweep where
  // every worker schedules against one shared StageStore (so same-frequency
  // cells coalesce across threads) must serialize exactly like the serial,
  // store-less monolithic run.
  EvaluationConfig cfg;
  cfg.trace_instructions = 5'000;

  SweepRunner::Options serial;
  serial.cache_path.clear();
  const std::string expect = sweep_to_csv(SweepRunner(cfg, serial).run());

  obs::MetricsRegistry reg(true);
  StageStore::Options sopts;
  sopts.registry = &reg;
  SweepRunner::Options parallel;
  parallel.jobs = 4;
  parallel.cache_path.clear();
  parallel.stage_store = std::make_shared<StageStore>(std::move(sopts));
  EXPECT_EQ(sweep_to_csv(SweepRunner(cfg, parallel).run()), expect);

  // 16 apps × 5 nodes, but only 4 distinct clock frequencies per app (the
  // two 65 nm points share 2 GHz): exactly 64 sim computations, and the
  // coalesced/warm 65 nm reuse shows up as sim hits.
  EXPECT_EQ(reg.counter("ramp_stage_sim_misses_total").value(), 64u);
  EXPECT_EQ(reg.counter("ramp_stage_sim_hits_total").value(), 16u);
  EXPECT_EQ(reg.counter("ramp_stage_fit_misses_total").value(), 80u);
  EXPECT_EQ(reg.counter("ramp_stage_fit_hits_total").value(), 0u);
}

}  // namespace
}  // namespace ramp::pipeline
