// Tests for the fast timing-simulation paths: sim-mode parsing and
// validation, auto resolution, the env plumbing, cache-key / config-hash
// separation between detailed and fast payloads (a cached fast-path result
// must never answer a detailed request), the sampled estimator's tolerance
// contract on a real workload, and rerun determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "pipeline/evaluator.hpp"
#include "pipeline/stage_graph.hpp"
#include "pipeline/sweep.hpp"
#include "scaling/technology.hpp"
#include "sim/interval_model.hpp"
#include "sim/ooo_core.hpp"
#include "sim/sampled_core.hpp"
#include "sim/sim_mode.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/error.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::pipeline {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    if (value != nullptr) {
      ::setenv(name_.c_str(), value, /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

// ---- mode parsing and parameter validation ---------------------------------

TEST(SimModeTest, NamesRoundTrip) {
  for (const auto mode : {sim::SimMode::kDetailed, sim::SimMode::kSampled,
                          sim::SimMode::kInterval, sim::SimMode::kAuto}) {
    EXPECT_EQ(sim::parse_sim_mode(sim::sim_mode_name(mode)), mode);
  }
}

TEST(SimModeTest, ParseRejectsUnknownSpellings) {
  EXPECT_THROW(sim::parse_sim_mode(""), InvalidArgument);
  EXPECT_THROW(sim::parse_sim_mode("Detailed"), InvalidArgument);
  EXPECT_THROW(sim::parse_sim_mode("SAMPLED"), InvalidArgument);
  EXPECT_THROW(sim::parse_sim_mode("fast"), InvalidArgument);
}

TEST(SimModeTest, SampledParamsValidate) {
  EXPECT_NO_THROW(sim::SampledParams{}.validate());

  sim::SampledParams p;
  p.windows = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);

  p = {};
  p.warmup = 0;
  p.measure = 0;  // nothing measured at all
  EXPECT_THROW(p.validate(), InvalidArgument);

  p = {};
  p.period = p.warmup + p.windows * p.measure - 1;  // unit longer than period
  EXPECT_THROW(p.validate(), InvalidArgument);
}

// ---- auto resolution and env plumbing --------------------------------------

TEST(SimModeTest, AutoResolvesBySamplingPayoffThreshold) {
  EvaluationConfig cfg;
  cfg.sim_mode = sim::SimMode::kAuto;
  cfg.trace_instructions = 999'999;
  EXPECT_EQ(resolved_sim_mode(cfg), sim::SimMode::kDetailed);
  cfg.trace_instructions = 1'000'000;
  EXPECT_EQ(resolved_sim_mode(cfg), sim::SimMode::kSampled);

  // Explicit modes resolve to themselves at any length; auto never picks
  // the interval model.
  cfg.trace_instructions = 1'000;
  for (const auto mode : {sim::SimMode::kDetailed, sim::SimMode::kSampled,
                          sim::SimMode::kInterval}) {
    cfg.sim_mode = mode;
    EXPECT_EQ(resolved_sim_mode(cfg), mode);
  }
}

TEST(SimModeTest, FromEnvReadsSimVariables) {
  ScopedEnv mode("RAMP_SIM_MODE", "interval");
  ScopedEnv period("RAMP_SIM_PERIOD", "50000");
  ScopedEnv warmup("RAMP_SIM_WARMUP", "2600");
  ScopedEnv measure("RAMP_SIM_MEASURE", "3000");
  ScopedEnv windows("RAMP_SIM_WINDOWS", "3");
  const EvaluationConfig cfg = EvaluationConfig::from_env();
  EXPECT_EQ(cfg.sim_mode, sim::SimMode::kInterval);
  EXPECT_EQ(cfg.sampled.period, 50'000u);
  EXPECT_EQ(cfg.sampled.warmup, 2'600u);
  EXPECT_EQ(cfg.sampled.measure, 3'000u);
  EXPECT_EQ(cfg.sampled.windows, 3u);
}

TEST(SimModeTest, FromEnvIsStrictAboutSimVariables) {
  {
    ScopedEnv mode("RAMP_SIM_MODE", "quick");  // misspelled: must not fall
    EXPECT_THROW(EvaluationConfig::from_env(), InvalidArgument);  // back
  }
  {
    ScopedEnv mode("RAMP_SIM_MODE", "sampled");
    ScopedEnv windows("RAMP_SIM_WINDOWS", "0");  // validated at read time
    EXPECT_THROW(EvaluationConfig::from_env(), InvalidArgument);
  }
  {
    ScopedEnv period("RAMP_SIM_PERIOD", "lots");
    EXPECT_THROW(EvaluationConfig::from_env(), InvalidArgument);
  }
}

// ---- cache keys and config hashes ------------------------------------------

StageKey gzip_trace_key(std::uint64_t instructions) {
  const auto& w = workloads::workload("gzip");
  TraceStageIn in;
  in.app = w.name;
  in.profile = w.profile;
  in.instructions = instructions;
  in.seed = 42;
  return trace_stage_key(in);
}

TEST(SimStageKeyTest, DetailedTagIsFrozenAndIgnoresSamplingParams) {
  const StageKey trace = gzip_trace_key(20'000);
  const StageKey legacy = sim_stage_key(trace, 1e9, 1e-6);
  EXPECT_EQ(legacy.canonical.rfind("sim.v1|", 0), 0u) << legacy.canonical;

  sim::SampledParams params;
  params.period = 12'345;
  EXPECT_EQ(sim_stage_key(trace, 1e9, 1e-6, sim::SimMode::kDetailed, params)
                .canonical,
            legacy.canonical);
}

TEST(SimStageKeyTest, FastModesGetTheirOwnKeys) {
  const StageKey trace = gzip_trace_key(20'000);
  const std::string detailed = sim_stage_key(trace, 1e9, 1e-6).canonical;
  const std::string sampled =
      sim_stage_key(trace, 1e9, 1e-6, sim::SimMode::kSampled).canonical;
  const std::string interval =
      sim_stage_key(trace, 1e9, 1e-6, sim::SimMode::kInterval).canonical;
  EXPECT_NE(sampled, detailed);
  EXPECT_NE(interval, detailed);
  EXPECT_NE(sampled, interval);
  EXPECT_EQ(sampled.rfind("sim.sampled.v1|", 0), 0u) << sampled;
  EXPECT_EQ(interval.rfind("sim.interval.v1|", 0), 0u) << interval;
}

TEST(SimStageKeyTest, SampledKeyEmbedsEverySamplingParameter) {
  const StageKey trace = gzip_trace_key(20'000);
  const auto key = [&](const sim::SampledParams& p) {
    return sim_stage_key(trace, 1e9, 1e-6, sim::SimMode::kSampled, p).canonical;
  };
  const sim::SampledParams base;
  const std::string base_key = key(base);
  using Field = std::uint64_t sim::SampledParams::*;
  for (const Field field :
       {&sim::SampledParams::period, &sim::SampledParams::warmup,
        &sim::SampledParams::measure, &sim::SampledParams::windows}) {
    sim::SampledParams p = base;
    p.*field += 1;
    EXPECT_NE(key(p), base_key);
  }
}

TEST(SimStageKeyTest, RejectsUnresolvedAuto) {
  const StageKey trace = gzip_trace_key(20'000);
  EXPECT_THROW(sim_stage_key(trace, 1e9, 1e-6, sim::SimMode::kAuto),
               InvalidArgument);
}

TEST(SimFastConfigHashTest, DetailedHashAndCanonicalStringStayFrozen) {
  EvaluationConfig cfg;
  const std::uint64_t hash = config_hash(cfg);
  const std::string canonical = canonical_config(cfg);
  EXPECT_EQ(canonical.find("sim_mode"), std::string::npos);

  // Sampling parameters are inert while the resolved mode is detailed —
  // existing sweep caches stay valid.
  cfg.sampled.period = 12'345;
  cfg.sim_mode = sim::SimMode::kAuto;  // 300k trace: resolves to detailed
  EXPECT_EQ(config_hash(cfg), hash);
  EXPECT_EQ(canonical_config(cfg), canonical);
}

TEST(SimFastConfigHashTest, FastModesJoinHashAndCanonicalString) {
  EvaluationConfig detailed;
  EvaluationConfig sampled = detailed;
  sampled.sim_mode = sim::SimMode::kSampled;
  EvaluationConfig interval = detailed;
  interval.sim_mode = sim::SimMode::kInterval;

  EXPECT_NE(config_hash(sampled), config_hash(detailed));
  EXPECT_NE(config_hash(interval), config_hash(detailed));
  EXPECT_NE(config_hash(sampled), config_hash(interval));
  EXPECT_NE(canonical_config(sampled).find(";sim_mode=sampled"),
            std::string::npos);
  EXPECT_NE(canonical_config(sampled).find(";windows="), std::string::npos);

  EvaluationConfig rewindowed = sampled;
  rewindowed.sampled.windows += 1;
  EXPECT_NE(config_hash(rewindowed), config_hash(sampled));
  EXPECT_NE(canonical_config(rewindowed), canonical_config(sampled));
}

// ---- a cached fast-path payload never answers a detailed request -----------

TEST(SimFastCacheTest, MisKeyedStoreNeverCrossAnswersModes) {
  EvaluationConfig cfg;
  cfg.trace_instructions = 20'000;
  cfg.cache_enabled = false;
  obs::MetricsRegistry reg(true);
  StageStore::Options opts;
  opts.registry = &reg;
  const auto store = std::make_shared<StageStore>(std::move(opts));
  const auto& w = workloads::workload("gzip");
  const auto count = [&reg](const char* name) {
    return reg.counter(name).value();
  };

  const Evaluator detailed(cfg, store);
  detailed.evaluate(w, scaling::TechPoint::k180nm);
  EXPECT_EQ(count("ramp_stage_sim_misses_total"), 1u);

  // Same trace, same node — only the sim mode differs. The sampled request
  // must miss the detailed payload (and recompute the trace-dependent sim
  // stage under its own key), not be answered by it.
  EvaluationConfig fast_cfg = cfg;
  fast_cfg.sim_mode = sim::SimMode::kSampled;
  const Evaluator fast(fast_cfg, store);
  const auto r1 = fast.evaluate(w, scaling::TechPoint::k180nm);
  EXPECT_EQ(count("ramp_stage_sim_hits_total"), 0u);
  EXPECT_EQ(count("ramp_stage_sim_misses_total"), 2u);

  // A repeated sampled request is answered from the store (at the fit
  // stage, whose key chain embeds the sampled sim key — a hit there
  // short-circuits the upstream lookups), byte-identically.
  const auto r2 = fast.evaluate(w, scaling::TechPoint::k180nm);
  EXPECT_EQ(count("ramp_stage_fit_hits_total"), 1u);
  EXPECT_EQ(count("ramp_stage_sim_misses_total"), 2u);
  EXPECT_EQ(r2.ipc, r1.ipc);
}

// ---- estimator quality and determinism -------------------------------------

struct Reference {
  sim::CoreConfig cfg = sim::core_config_for(scaling::base_node());
  std::uint64_t interval_cycles = 0;
  sim::SimResult detailed;

  Reference(const workloads::Workload& w, std::uint64_t instructions) {
    interval_cycles = static_cast<std::uint64_t>(
        std::llround(cfg.frequency_hz * 1e-6));
    trace::SyntheticTrace t(w.profile, instructions, 42);
    sim::OooCore core(cfg);
    detailed = core.run(t, interval_cycles);
  }
};

double rel_ipc_error(const sim::SimResult& est, const sim::SimResult& det) {
  return std::abs(est.totals.ipc() - det.totals.ipc()) / det.totals.ipc();
}

double max_activity_error(const sim::SimResult& est,
                          const sim::SimResult& det) {
  double worst = 0.0;
  for (std::size_t s = 0; s < sim::kNumStructures; ++s) {
    worst = std::max(worst, std::abs(est.totals.avg_activity[s] -
                                     det.totals.avg_activity[s]));
  }
  return worst;
}

TEST(SimFastAccuracyTest, EstimatorsHoldToleranceOnGzipAt2M) {
  // One representative cell of the contract `ramp simcheck` enforces over
  // the whole suite: ±2% IPC / ±0.02 activity for sampled, ±5% IPC for the
  // interval model, at the 2M-instruction length the contract is sold for.
  const auto& w = workloads::workload("gzip");
  constexpr std::uint64_t kInstructions = 2'000'000;
  const Reference ref(w, kInstructions);

  {
    trace::SyntheticTrace t(w.profile, kInstructions, 42);
    sim::SampledCore core(ref.cfg, sim::SampledParams{});
    const sim::SimResult est = core.run(t, ref.interval_cycles);
    EXPECT_LE(rel_ipc_error(est, ref.detailed), 0.02);
    EXPECT_LE(max_activity_error(est, ref.detailed), 0.02);

    const sim::FastSimStats& stats = core.fast_stats();
    EXPECT_EQ(stats.mode, sim::SimMode::kSampled);
    EXPECT_GT(stats.coverage, 0.0);
    EXPECT_LT(stats.coverage, 0.2);  // the speedup exists at all
    EXPECT_GE(stats.units, 10u);
    EXPECT_GT(stats.ipc_half_width, 0.0);
  }
  {
    trace::SyntheticTrace t(w.profile, kInstructions, 42);
    sim::IntervalModel model(ref.cfg);
    const sim::SimResult est = model.run(t, ref.interval_cycles);
    EXPECT_LE(rel_ipc_error(est, ref.detailed), 0.05);
    EXPECT_LE(max_activity_error(est, ref.detailed), 0.02);
    EXPECT_EQ(model.fast_stats().mode, sim::SimMode::kInterval);
  }
}

TEST(SimFastDeterminismTest, SampledRerunIsExactlyIdentical) {
  const auto& w = workloads::workload("gcc");
  const auto run_once = [&] {
    const sim::CoreConfig cfg = sim::core_config_for(scaling::base_node());
    trace::SyntheticTrace t(w.profile, 300'000, 42);
    sim::SampledCore core(cfg, sim::SampledParams{});
    return core.run(t, 1'000);
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();
  EXPECT_EQ(a.totals.cycles, b.totals.cycles);
  EXPECT_EQ(a.totals.instructions, b.totals.instructions);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].cycles, b.intervals[i].cycles);
    for (std::size_t s = 0; s < sim::kNumStructures; ++s) {
      // Bitwise, not approximate: the fast path promises byte-identical
      // payloads across reruns.
      EXPECT_EQ(a.intervals[i].activity[s], b.intervals[i].activity[s]);
    }
  }
}

}  // namespace
}  // namespace ramp::pipeline
