// Determinism and observer tests for the parallel SweepRunner: any job
// count must serialize byte-identically to a serial (jobs = 1) run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "pipeline/sweep.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ramp::pipeline {
namespace {

EvaluationConfig quick_config() {
  EvaluationConfig cfg;
  cfg.trace_instructions = 20'000;
  return cfg;
}

std::string runner_csv(std::size_t jobs, ProgressObserver* observer = nullptr);

// The serial baseline every test compares against, computed once.
const std::string& serial_csv() {
  static const std::string csv = runner_csv(1);
  return csv;
}

std::string runner_csv(std::size_t jobs, ProgressObserver* observer) {
  SweepRunner::Options opts;
  opts.jobs = jobs;
  opts.cache_path = "";
  opts.observer = observer;
  return sweep_to_csv(SweepRunner(quick_config(), opts).run());
}

TEST(SweepParallelTest, SerialRerunIsByteForByteDeterministic) {
  EXPECT_EQ(runner_csv(1), serial_csv());
}

TEST(SweepParallelTest, FourJobsMatchSerialByteForByte) {
  EXPECT_EQ(runner_csv(4), serial_csv());
}

TEST(SweepParallelTest, ExternalPoolReuseMatchesToo) {
  ThreadPool pool(3);
  SweepRunner::Options opts;
  opts.cache_path = "";
  opts.pool = &pool;
  const SweepRunner runner(quick_config(), opts);
  EXPECT_EQ(sweep_to_csv(runner.run()), serial_csv());
  EXPECT_EQ(sweep_to_csv(runner.run()), serial_csv());  // pool still usable
}

TEST(SweepParallelTest, RejectsZeroJobs) {
  SweepRunner::Options opts;
  opts.jobs = 0;
  EXPECT_THROW(SweepRunner(quick_config(), opts), InvalidArgument);
}

// Records every event; SweepRunner serializes observer calls, so no locking.
class RecordingObserver final : public ProgressObserver {
 public:
  void on_sweep_begin(std::size_t total_cells, std::size_t jobs) override {
    total_cells_ = total_cells;
    jobs_ = jobs;
  }
  void on_cell_start(const SweepCell& cell) override { started_.push_back(cell); }
  void on_cell_finish(const SweepCell& cell, const AppTechResult& result,
                      double wall_seconds) override {
    finished_.push_back(cell);
    EXPECT_EQ(result.app, cell.app);
    EXPECT_EQ(result.tech, cell.tech);
    EXPECT_GE(wall_seconds, 0.0);
  }
  void on_sweep_end(double wall_seconds) override {
    end_wall_s_ = wall_seconds;
  }

  std::size_t total_cells_ = 0;
  std::size_t jobs_ = 0;
  std::vector<SweepCell> started_;
  std::vector<SweepCell> finished_;
  double end_wall_s_ = -1.0;
};

TEST(SweepParallelTest, ObserverSeesEveryCellExactlyOnce) {
  RecordingObserver obs;
  runner_csv(4, &obs);
  EXPECT_EQ(obs.total_cells_, 80u);
  EXPECT_EQ(obs.jobs_, 4u);
  EXPECT_EQ(obs.started_.size(), 80u);
  EXPECT_EQ(obs.finished_.size(), 80u);
  EXPECT_GE(obs.end_wall_s_, 0.0);

  // Deterministic task IDs: the finish events form a permutation of 0..79,
  // and each ID maps to the canonical (app-major, tech-minor) cell.
  std::set<std::uint64_t> ids;
  for (const auto& cell : obs.finished_) {
    EXPECT_TRUE(ids.insert(cell.task_id).second);
    EXPECT_LT(cell.task_id, 80u);
    EXPECT_GE(cell.worker_id, 0);
    EXPECT_LT(cell.worker_id, 4);
    const auto& app = workloads::spec2k_suite()[cell.task_id / 5];
    EXPECT_EQ(cell.app, app.name);
    if (cell.task_id % 5 == 0) {
      EXPECT_EQ(cell.tech, scaling::TechPoint::k180nm);
    }
  }
  EXPECT_EQ(ids.size(), 80u);

  // Dependency order: within an app, the 180 nm cell starts before any
  // scaled cell finishes... stronger: base start precedes scaled starts.
  std::vector<std::size_t> start_pos(80, 0);
  for (std::size_t i = 0; i < obs.started_.size(); ++i) {
    start_pos[obs.started_[i].task_id] = i;
  }
  for (std::size_t app = 0; app < 16; ++app) {
    for (std::size_t node = 1; node < 5; ++node) {
      EXPECT_LT(start_pos[app * 5], start_pos[app * 5 + node]);
    }
  }
}

TEST(SweepParallelTest, CacheRoundtripThroughRunner) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "ramp_sweep_parallel_test_cache.csv").string();
  fs::remove(path);

  EvaluationConfig cfg;
  cfg.trace_instructions = 5'000;
  SweepRunner::Options opts;
  opts.jobs = 4;
  opts.cache_path = path;
  const auto first = SweepRunner(cfg, opts).run();
  ASSERT_TRUE(fs::exists(path));
  // No torn temp files left behind by the atomic write.
  for (const auto& e : fs::directory_iterator(fs::temp_directory_path())) {
    EXPECT_EQ(e.path().string().find("ramp_sweep_parallel_test_cache.csv.tmp"),
              std::string::npos);
  }

  class CacheHitObserver final : public ProgressObserver {
   public:
    void on_cache_hit(const std::string&) override { hits++; }
    void on_cell_start(const SweepCell&) override { cells++; }
    int hits = 0;
    int cells = 0;
  } obs;
  opts.observer = &obs;
  const auto second = SweepRunner(cfg, opts).run();
  EXPECT_EQ(obs.hits, 1);
  EXPECT_EQ(obs.cells, 0);
  EXPECT_EQ(sweep_to_csv(second), sweep_to_csv(first));

  // A config with caching disabled ignores the file entirely.
  cfg.cache_enabled = false;
  obs.hits = 0;
  obs.cells = 0;
  SweepRunner(cfg, opts).run();
  EXPECT_EQ(obs.hits, 0);
  EXPECT_EQ(obs.cells, 80);
  fs::remove(path);
}

}  // namespace
}  // namespace ramp::pipeline
