// Tests for binary trace serialization.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/ooo_core.hpp"
#include "trace/synthetic_generator.hpp"
#include "util/error.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "ramp_trace_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceIoTest, RoundtripPreservesEveryField) {
  const auto& w = workloads::workload("gcc");
  const std::uint64_t n = 5000;
  {
    SyntheticTrace gen(w.profile, n, 123);
    TraceWriter writer(path_);
    EXPECT_EQ(writer.append_all(gen), n);
    EXPECT_EQ(writer.written(), n);
  }
  SyntheticTrace gen(w.profile, n, 123);  // regenerate the same stream
  TraceFileReader reader(path_);
  EXPECT_EQ(reader.total_instructions(), n);
  Instruction expect, got;
  std::uint64_t count = 0;
  while (gen.next(expect)) {
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(static_cast<int>(got.op), static_cast<int>(expect.op));
    EXPECT_EQ(got.dst, expect.dst);
    EXPECT_EQ(got.src1, expect.src1);
    EXPECT_EQ(got.src2, expect.src2);
    EXPECT_EQ(got.pc, expect.pc);
    EXPECT_EQ(got.mem_addr, expect.mem_addr);
    EXPECT_EQ(got.branch_taken, expect.branch_taken);
    EXPECT_EQ(got.branch_target, expect.branch_target);
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_FALSE(reader.next(got));  // exhausted
}

TEST_F(TraceIoTest, EmptyTraceRoundtrips) {
  { TraceWriter writer(path_); }
  TraceFileReader reader(path_);
  EXPECT_EQ(reader.total_instructions(), 0u);
  Instruction ins;
  EXPECT_FALSE(reader.next(ins));
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TraceFileReader("/nonexistent/dir/trace.bin"), InvalidArgument);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "NOTATRACE-------------------";
  }
  EXPECT_THROW(TraceFileReader{path_}, InvalidArgument);
}

TEST_F(TraceIoTest, TruncatedFileDetected) {
  {
    const auto& w = workloads::workload("gzip");
    SyntheticTrace gen(w.profile, 100, 5);
    TraceWriter writer(path_);
    writer.append_all(gen);
  }
  // Chop off the tail: header says 100 records but fewer are present.
  {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 40));
  }
  TraceFileReader reader(path_);
  Instruction ins;
  EXPECT_THROW(
      {
        while (reader.next(ins)) {
        }
      },
      InvalidArgument);
}

TEST_F(TraceIoTest, ReplayedTraceDrivesSimulatorIdentically) {
  // A captured trace must produce bit-identical timing to the live
  // generator — the property that makes file-driven studies valid.
  const auto& w = workloads::workload("crafty");
  const std::uint64_t n = 20000;
  {
    SyntheticTrace gen(w.profile, n, 9);
    TraceWriter writer(path_);
    writer.append_all(gen);
  }
  sim::OooCore live_core(sim::base_core_config());
  SyntheticTrace live(w.profile, n, 9);
  const auto live_result = live_core.run(live, 1100);

  sim::OooCore file_core(sim::base_core_config());
  TraceFileReader replay(path_);
  const auto file_result = file_core.run(replay, 1100);

  EXPECT_EQ(live_result.totals.cycles, file_result.totals.cycles);
  EXPECT_EQ(live_result.totals.instructions, file_result.totals.instructions);
  EXPECT_EQ(live_result.totals.branch_mispredicts,
            file_result.totals.branch_mispredicts);
  EXPECT_EQ(live_result.totals.l1d_misses, file_result.totals.l1d_misses);
}

}  // namespace
}  // namespace ramp::trace
