// Tests for the grid-mode thermal model and its agreement with the block
// model.
#include "thermal/grid_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::thermal {
namespace {

TEST(GridModelTest, CoverageFractionsSumToOnePerCell) {
  // The POWER4 floorplan tiles the die, so every cell is fully covered.
  const GridModel grid(power4_floorplan(), {}, 12, 12);
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      double sum = 0;
      for (std::size_t b = 0; b < grid.floorplan().size(); ++b) {
        sum += grid.coverage(c, r, b);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "cell " << c << "," << r;
    }
  }
}

TEST(GridModelTest, ZeroPowerSettlesAtAmbient) {
  const GridModel grid(power4_floorplan(), {}, 8, 8);
  const auto t = grid.steady_state(std::vector<double>(7, 0.0));
  for (double v : t) EXPECT_NEAR(v, 318.15, 1e-9);
}

TEST(GridModelTest, EnergyBalanceAtSink) {
  ThermalConfig cfg;
  const GridModel grid(power4_floorplan(), cfg, 10, 10);
  const std::vector<double> p(7, 4.0);
  const auto t = grid.steady_state(p);
  const double sink = t[grid.num_cells() + 1];
  EXPECT_NEAR((sink - cfg.ambient_k) / cfg.r_convec_k_per_w, 28.0, 1e-7);
}

TEST(GridModelTest, AgreesWithBlockModelOnAverages) {
  // For a smooth power map, per-block grid averages must track the block
  // model within a fraction of the junction-to-sink rise.
  const Floorplan fp = power4_floorplan();
  ThermalConfig cfg;
  const RcNetwork block_net(fp, cfg);
  const GridModel grid(fp, cfg, 16, 16);
  std::vector<double> p = {6.0, 4.0, 1.0, 5.0, 4.0, 3.5, 2.5};
  const auto tb = block_net.steady_state(p);
  const auto tg = grid.steady_state(p);
  for (std::size_t b = 0; b < fp.size(); ++b) {
    const double avg = grid.block_average(tg, b);
    // Both models share the vertical/spreader/sink path; lateral detail
    // differs, so allow ~1.5 K.
    EXPECT_NEAR(avg, tb[b], 1.5) << fp.block(b).name;
  }
  // Spreader and sink nodes agree tightly (same total heat).
  EXPECT_NEAR(tg[grid.num_cells() + 1], tb[fp.size() + 1], 1e-6);
}

TEST(GridModelTest, PeakExceedsAverageUnderConcentration) {
  // Concentrating power in one block produces an intra-block gradient the
  // block model cannot represent: peak > average within that block.
  const Floorplan fp = power4_floorplan();
  const GridModel grid(fp, {}, 16, 16);
  std::vector<double> p(7, 0.5);
  const auto lsu = fp.index_of("LSU");
  p[lsu] = 15.0;
  const auto t = grid.steady_state(p);
  EXPECT_GT(grid.block_peak(t, lsu), grid.block_average(t, lsu) + 0.3);
}

TEST(GridModelTest, HeatSpreadsToNeighborCells) {
  // A powered block warms its neighbors above ambient-only level.
  const Floorplan fp = power4_floorplan();
  const GridModel grid(fp, {}, 12, 12);
  std::vector<double> p(7, 0.0);
  const auto fxu = fp.index_of("FXU");
  p[fxu] = 10.0;
  const auto t = grid.steady_state(p);
  const auto bxu = fp.index_of("BXU");  // adjacent to FXU
  EXPECT_GT(grid.block_average(t, bxu), 318.15 + 0.5);
  // And the powered block is the hottest.
  for (std::size_t b = 0; b < fp.size(); ++b) {
    EXPECT_GE(grid.block_average(t, fxu), grid.block_average(t, b) - 1e-9);
  }
}

TEST(GridModelTest, FinerGridRefinesPeak) {
  // Refining the mesh must not reduce the resolved hotspot peak.
  const Floorplan fp = power4_floorplan();
  std::vector<double> p(7, 0.5);
  p[fp.index_of("BXU")] = 12.0;  // small block, strong concentration
  const GridModel coarse(fp, {}, 6, 6);
  const GridModel fine(fp, {}, 24, 24);
  const auto tc = coarse.steady_state(p);
  const auto tf = fine.steady_state(p);
  const auto bxu = fp.index_of("BXU");
  EXPECT_GE(fine.block_peak(tf, bxu), coarse.block_peak(tc, bxu) - 0.05);
}

TEST(GridModelTest, RejectsBadConfig) {
  EXPECT_THROW(GridModel(power4_floorplan(), {}, 1, 8), InvalidArgument);
  EXPECT_THROW(GridModel(power4_floorplan(), {}, 100, 100), InvalidArgument);
  const GridModel grid(power4_floorplan(), {}, 4, 4);
  EXPECT_THROW(grid.steady_state({1.0}), InvalidArgument);
  EXPECT_THROW(grid.coverage(9, 0, 0), InvalidArgument);
}

}  // namespace
}  // namespace ramp::thermal
