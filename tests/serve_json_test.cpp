// Tests for the serve layer's vendored JSON codec: parse/dump round trips,
// number formatting (integers below 2^53 print without a decimal point,
// doubles round-trip), insertion-ordered objects, and parse errors that
// carry a byte offset.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/json.hpp"
#include "util/error.hpp"

namespace ramp::serve {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, WhitespaceAndNesting) {
  const Json j = Json::parse(R"(  {"a": [1, 2, {"b": null}], "c": "d"}  )");
  ASSERT_TRUE(j.is_object());
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(a->elements()[0].as_number(), 1.0);
  EXPECT_TRUE(a->elements()[2].find("b")->is_null());
  EXPECT_EQ(j.find("c")->as_string(), "d");
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_THROW(Json::parse(R"("\ud834")"), InvalidArgument);  // surrogate
  EXPECT_THROW(Json::parse(R"("\u12g4")"), InvalidArgument);
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  try {
    Json::parse("{\"a\": tru}");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("nul"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"raw \x01 control\""), InvalidArgument);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{1} << 50).dump(), "1125899906842624");
}

TEST(JsonDumpTest, DoublesRoundTrip) {
  const double value = 9271.0573276256691;
  const std::string text = Json(value).dump();
  EXPECT_DOUBLE_EQ(Json::parse(text).as_number(), value);
  EXPECT_EQ(Json(std::nan("")).dump(), "null");  // non-finite degrades
}

TEST(JsonDumpTest, StringsEscapeControlCharacters) {
  EXPECT_EQ(Json("a\"b").dump(), R"("a\"b")");
  EXPECT_EQ(Json("a\nb").dump(), R"("a\nb")");
  EXPECT_EQ(Json(std::string("a\x01z")).dump(), R"("a\u0001z")");
}

TEST(JsonDumpTest, ObjectsKeepInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", Json::array().push(true).push("x"));
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":[true,"x"]})");
}

TEST(JsonDumpTest, ParseDumpIsStableOnWireShapes) {
  const std::string wire =
      R"({"ok":true,"op":"eval","id":7,"result":{"ipc":0.5,"apps":["gcc"]}})";
  EXPECT_EQ(Json::parse(wire).dump(), wire);
}

TEST(JsonAccessTest, TypeMismatchNamesTheField) {
  const Json j = Json::parse(R"({"n": "not a number"})");
  try {
    j.find("n")->as_number("field n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("field n"), std::string::npos);
  }
  EXPECT_THROW(j.as_bool(), InvalidArgument);
  EXPECT_THROW(j.as_string(), InvalidArgument);
}

}  // namespace
}  // namespace ramp::serve
