// Tests for the serve layer's vendored JSON codec: parse/dump round trips,
// number formatting (integers below 2^53 print without a decimal point,
// doubles round-trip), insertion-ordered objects, and parse errors that
// carry a byte offset.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/json.hpp"
#include "util/error.hpp"

namespace ramp::serve {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, WhitespaceAndNesting) {
  const Json j = Json::parse(R"(  {"a": [1, 2, {"b": null}], "c": "d"}  )");
  ASSERT_TRUE(j.is_object());
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(a->elements()[0].as_number(), 1.0);
  EXPECT_TRUE(a->elements()[2].find("b")->is_null());
  EXPECT_EQ(j.find("c")->as_string(), "d");
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_THROW(Json::parse(R"("\ud834")"), InvalidArgument);  // surrogate
  EXPECT_THROW(Json::parse(R"("\u12g4")"), InvalidArgument);
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  try {
    Json::parse("{\"a\": tru}");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("nul"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"raw \x01 control\""), InvalidArgument);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{1} << 50).dump(), "1125899906842624");
}

TEST(JsonDumpTest, DoublesRoundTrip) {
  const double value = 9271.0573276256691;
  const std::string text = Json(value).dump();
  EXPECT_DOUBLE_EQ(Json::parse(text).as_number(), value);
  EXPECT_EQ(Json(std::nan("")).dump(), "null");  // non-finite degrades
}

TEST(JsonDumpTest, StringsEscapeControlCharacters) {
  EXPECT_EQ(Json("a\"b").dump(), R"("a\"b")");
  EXPECT_EQ(Json("a\nb").dump(), R"("a\nb")");
  EXPECT_EQ(Json(std::string("a\x01z")).dump(), R"("a\u0001z")");
}

TEST(JsonDumpTest, ObjectsKeepInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", Json::array().push(true).push("x"));
  EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":[true,"x"]})");
}

TEST(JsonDumpTest, ParseDumpIsStableOnWireShapes) {
  const std::string wire =
      R"({"ok":true,"op":"eval","id":7,"result":{"ipc":0.5,"apps":["gcc"]}})";
  EXPECT_EQ(Json::parse(wire).dump(), wire);
}

TEST(JsonAccessTest, TypeMismatchNamesTheField) {
  const Json j = Json::parse(R"({"n": "not a number"})");
  try {
    j.find("n")->as_number("field n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("field n"), std::string::npos);
  }
  EXPECT_THROW(j.as_bool(), InvalidArgument);
  EXPECT_THROW(j.as_string(), InvalidArgument);
}

// ---- Adversarial input -----------------------------------------------------
// The serve front-ends hand every network-supplied line to this parser; a
// crash or hang here is a remote denial of service. These tests feed the
// classic parser-killers — unbounded nesting, truncated UTF-8, embedded
// NULs, bit-flipped and truncated real requests, seeded random bytes — and
// require exactly two outcomes: a parsed value or InvalidArgument.

TEST(JsonAdversarialTest, DeepNestingIsRejectedNotStackOverflow) {
  // Without a depth cap each '[' recursed once: 200k of them overflowed
  // the stack long before the parse failed for any other reason.
  EXPECT_THROW(Json::parse(std::string(200'000, '[')), InvalidArgument);
  const std::string bombs = R"({"a":)";
  std::string object_bomb;
  for (int i = 0; i < 100'000; ++i) object_bomb += bombs;
  EXPECT_THROW(Json::parse(object_bomb), InvalidArgument);
}

TEST(JsonAdversarialTest, ModestNestingStillParses) {
  constexpr int kDepth = 32;  // well under the cap; real requests use ~3
  std::string text(kDepth, '[');
  text += "1";
  text.append(kDepth, ']');
  const Json j = Json::parse(text);
  const Json* inner = &j;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_EQ(inner->elements().size(), 1u);
    inner = &inner->elements()[0];
  }
  EXPECT_DOUBLE_EQ(inner->as_number(), 1.0);
}

TEST(JsonAdversarialTest, TruncatedUtf8BytesDoNotCrash) {
  // The codec is byte-oriented: invalid UTF-8 inside a string must either
  // round-trip verbatim or throw — never crash or mangle lengths.
  for (const std::string& bytes :
       {std::string("\xC3"), std::string("\xE2\x82"),
        std::string("\xF0\x9F\x92"), std::string("\xFF\xFE"),
        std::string("a\xC3\x28z")}) {
    const std::string doc = "{\"k\":\"" + bytes + "\"}";
    try {
      const Json j = Json::parse(doc);
      ASSERT_NE(j.find("k"), nullptr);
      EXPECT_EQ(j.find("k")->as_string(), bytes);
      EXPECT_NO_THROW(j.dump());
    } catch (const InvalidArgument&) {
      // rejecting malformed UTF-8 outright is also acceptable
    }
  }
}

TEST(JsonAdversarialTest, NulBytesInsideInput) {
  // Escaped NUL is legal JSON and must survive as a real NUL byte.
  const Json j = Json::parse("{\"k\":\"a\\u0000b\"}");
  ASSERT_NE(j.find("k"), nullptr);
  EXPECT_EQ(j.find("k")->as_string().size(), 3u);
  EXPECT_EQ(j.find("k")->as_string()[1], '\0');

  // A raw NUL in the byte stream is not whitespace: parse or throw, no UB.
  std::string raw = R"({"k":1})";
  raw[3] = '\0';
  try {
    (void)Json::parse(raw);
  } catch (const InvalidArgument&) {
  }
}

TEST(JsonAdversarialTest, MutatedRealRequestsParseOrThrow) {
  const std::string base =
      R"({"op":"eval","app":"gcc","node":"90","trace_len":3000,"id":7})";
  // Every truncation point and every single-byte corruption of a real
  // request line: the parser must decide, not die.
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    try {
      (void)Json::parse(base.substr(0, cut));
    } catch (const InvalidArgument&) {
    }
  }
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const char c : {'\0', '"', '{', '}', '\\', '\x80', '\x1f'}) {
      std::string mutated = base;
      mutated[pos] = c;
      try {
        (void)Json::parse(mutated);
      } catch (const InvalidArgument&) {
      }
    }
  }
}

TEST(JsonAdversarialTest, SeededRandomCorpusParsesOrThrows) {
  // Deterministic fuzz-lite: random bytes, and random bytes drawn from the
  // JSON alphabet (which reaches deeper parser states far more often).
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string alphabet = R"({}[]",:.-+eE0123456789truefalsnl\ )";
  for (int round = 0; round < 2'000; ++round) {
    const std::size_t len = next() % 64;
    std::string doc;
    for (std::size_t i = 0; i < len; ++i) {
      doc.push_back(round % 2 == 0
                        ? static_cast<char>(next() & 0xff)
                        : alphabet[next() % alphabet.size()]);
    }
    try {
      const Json j = Json::parse(doc);
      EXPECT_NO_THROW(j.dump());  // anything accepted must serialize
    } catch (const InvalidArgument&) {
    }
  }
}

}  // namespace
}  // namespace ramp::serve
