// Tests for the RC thermal model: steady state, transient, energy balance.
#include "thermal/rc_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::thermal {
namespace {

RcNetwork small_net(ThermalConfig cfg = {}) {
  return RcNetwork(power4_floorplan(), cfg);
}

std::vector<double> uniform_power(std::size_t n, double watts) {
  return std::vector<double>(n, watts);
}

TEST(RcNetworkTest, ZeroPowerSettlesAtAmbient) {
  const RcNetwork net = small_net();
  const auto t = net.steady_state(uniform_power(net.num_blocks(), 0.0));
  for (double v : t) EXPECT_NEAR(v, net.ambient(), 1e-9);
}

TEST(RcNetworkTest, SinkTemperatureObeysConvectionLaw) {
  // In steady state, all heat leaves through R_convec:
  // T_sink = T_amb + P_total * R.
  const RcNetwork net = small_net();
  const double per_block = 4.0;
  const auto t = net.steady_state(uniform_power(net.num_blocks(), per_block));
  const double p_total = per_block * static_cast<double>(net.num_blocks());
  EXPECT_NEAR(t[net.num_blocks() + 1], net.ambient() + p_total * 0.8, 1e-6);
}

TEST(RcNetworkTest, BlocksAreHotterThanSpreaderAndSink) {
  const RcNetwork net = small_net();
  const auto t = net.steady_state(uniform_power(net.num_blocks(), 4.0));
  const double spreader = t[net.num_blocks()];
  const double sink = t[net.num_blocks() + 1];
  EXPECT_GT(spreader, sink);
  for (std::size_t i = 0; i < net.num_blocks(); ++i) {
    EXPECT_GT(t[i], spreader);
  }
}

TEST(RcNetworkTest, HigherPowerDensityBlockIsHotter) {
  const RcNetwork net = small_net();
  // Put all the power in one (small) block: it must be the hottest.
  std::vector<double> p(net.num_blocks(), 1.0);
  const auto bxu = net.floorplan().index_of("BXU");
  p[bxu] = 10.0;
  const auto t = net.steady_state(p);
  for (std::size_t i = 0; i < net.num_blocks(); ++i) {
    if (i != bxu) {
      EXPECT_GT(t[bxu], t[i]);
    }
  }
}

TEST(RcNetworkTest, SmallerDieRunsHotterAtSamePower) {
  // Scaling shrinks the vertical conductances: same block powers => larger
  // junction-to-sink rises (the paper's power-density effect).
  const RcNetwork big(power4_floorplan(), {});
  const RcNetwork small(power4_floorplan().scaled(0.4), {});
  const auto tb = big.steady_state(uniform_power(big.num_blocks(), 3.0));
  const auto ts = small.steady_state(uniform_power(small.num_blocks(), 3.0));
  // Compare hottest block rise over the sink.
  auto rise = [](const RcNetwork& n, const std::vector<double>& t) {
    double hottest = 0;
    for (std::size_t i = 0; i < n.num_blocks(); ++i)
      hottest = std::max(hottest, t[i]);
    return hottest - t[n.num_blocks() + 1];
  };
  EXPECT_GT(rise(small, ts), 2.0 * rise(big, tb));
}

TEST(RcNetworkTest, SetRConvecMovesSinkTemperature) {
  RcNetwork net = small_net();
  const auto t1 = net.steady_state(uniform_power(net.num_blocks(), 4.0));
  net.set_r_convec(0.4);
  const auto t2 = net.steady_state(uniform_power(net.num_blocks(), 4.0));
  const double p_total = 4.0 * static_cast<double>(net.num_blocks());
  EXPECT_NEAR(t2[net.num_blocks() + 1], net.ambient() + p_total * 0.4, 1e-6);
  EXPECT_LT(t2[0], t1[0]);
}

TEST(RcNetworkTest, SetRConvecRoundTripRestoresMatrixBitwise) {
  // Regression: the sink diagonal used to be updated with `+= 1/r_new -
  // 1/r_old`, so repeated calibration calls accumulated rounding error and
  // drifted the Laplacian. It must now be rebuilt from the stored base:
  // however many times the resistance is changed, landing back on the
  // original value must reproduce the original matrix bit for bit.
  RcNetwork net = small_net();
  const double r0 = net.r_convec();
  Matrix g0 = net.conductance();
  const auto t0 = net.steady_state(uniform_power(net.num_blocks(), 4.0));
  for (int i = 0; i < 20; ++i) {
    net.set_r_convec(0.3 + 0.01 * i);  // values with inexact reciprocals
    net.set_r_convec(r0);
  }
  const Matrix& g1 = net.conductance();
  ASSERT_EQ(g1.rows(), g0.rows());
  for (std::size_t r = 0; r < g0.rows(); ++r) {
    for (std::size_t c = 0; c < g0.cols(); ++c) {
      EXPECT_EQ(g1(r, c), g0(r, c)) << "drift at (" << r << "," << c << ")";
    }
  }
  // And the factored solver was refreshed to match: same bits out.
  const auto t1 = net.steady_state(uniform_power(net.num_blocks(), 4.0));
  for (std::size_t i = 0; i < t0.size(); ++i) EXPECT_EQ(t1[i], t0[i]);
}

TEST(RcNetworkTest, SteadyStateIntoMatchesSteadyStateBitwise) {
  const RcNetwork net = small_net();
  std::vector<double> p(net.num_blocks());
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = 1.0 + 0.7 * static_cast<double>(i);
  }
  const auto t = net.steady_state(p);
  SteadyWorkspace ws;
  std::vector<double> out;
  for (int rep = 0; rep < 3; ++rep) {  // reuse the workspace across calls
    net.steady_state_into(p, ws, out);
    ASSERT_EQ(out.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(out[i], t[i]);
  }
}

TEST(RcNetworkTest, LeakageFixedPointConverges) {
  const RcNetwork net = small_net();
  // Power grows mildly with temperature (leakage-like): the fixed point
  // must converge above the constant-power solution.
  auto power_of = [&](const std::vector<double>& temps) {
    std::vector<double> p(temps.size());
    for (std::size_t i = 0; i < temps.size(); ++i) {
      p[i] = 3.0 + 0.5 * std::exp(0.017 * (temps[i] - 383.0));
    }
    return p;
  };
  const auto t = net.steady_state(power_of);
  const auto t_const = net.steady_state(uniform_power(net.num_blocks(), 3.0));
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_GT(t[i], t_const[i]);
  // And it is a true fixed point: re-solving with the converged powers
  // reproduces the temperatures.
  std::vector<double> block_temps(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(net.num_blocks()));
  const auto t2 = net.steady_state(power_of(block_temps));
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_NEAR(t2[i], t[i], 1e-3);
}

TEST(RcNetworkTest, ThermalRunawayThrows) {
  const RcNetwork net = small_net();
  // Pathological super-exponential leakage: no fixed point exists.
  auto power_of = [&](const std::vector<double>& temps) {
    std::vector<double> p(temps.size());
    for (std::size_t i = 0; i < temps.size(); ++i) {
      p[i] = 10.0 + std::exp(0.5 * (temps[i] - 320.0));
    }
    return p;
  };
  EXPECT_THROW(net.steady_state(power_of, 1e-6, 50), ConvergenceError);
}

TEST(TransientTest, ConvergesToSteadyState) {
  const RcNetwork net = small_net();
  const auto p = uniform_power(net.num_blocks(), 4.0);
  const auto steady = net.steady_state(p);
  // Start at the steady state of a colder run and walk toward the new one
  // with big steps (implicit Euler is unconditionally stable). The sink
  // pole has tau = R·C ≈ 960 s, so integrate well past 10 tau.
  Transient tr(net, net.steady_state(uniform_power(net.num_blocks(), 1.0)), 0.5);
  for (int i = 0; i < 30000; ++i) tr.step(p);  // 15,000 s
  for (std::size_t i = 0; i < steady.size(); ++i) {
    EXPECT_NEAR(tr.temperatures()[i], steady[i], 0.01) << "node " << i;
  }
}

TEST(TransientTest, SteadyStateIsAFixedPoint) {
  const RcNetwork net = small_net();
  const auto p = uniform_power(net.num_blocks(), 5.0);
  const auto steady = net.steady_state(p);
  Transient tr(net, steady, 1e-6);
  for (int i = 0; i < 100; ++i) tr.step(p);
  for (std::size_t i = 0; i < steady.size(); ++i) {
    EXPECT_NEAR(tr.temperatures()[i], steady[i], 1e-6);
  }
}

TEST(TransientTest, SiliconRespondsFasterThanSink) {
  // The HotSpot observation motivating the paper's two-run methodology:
  // silicon reaches its *local* equilibrium (block-over-sink differential)
  // in milliseconds while the sink itself has barely moved.
  const RcNetwork net = small_net();
  const auto cold = net.steady_state(uniform_power(net.num_blocks(), 1.0));
  const auto hot_p = uniform_power(net.num_blocks(), 6.0);
  const auto hot = net.steady_state(hot_p);
  Transient tr(net, cold, 1e-3);
  for (int i = 0; i < 200; ++i) tr.step(hot_p);  // 200 ms
  const std::size_t spreader = net.num_blocks();
  const std::size_t sink = net.num_blocks() + 1;
  // The block-over-spreader differential (block tau ≈ 13 ms) is nearly
  // complete... (the spreader itself is a 15 s pole, the sink a 960 s one)
  const double diff_now = tr.temperatures()[0] - tr.temperatures()[spreader];
  const double diff_cold = cold[0] - cold[spreader];
  const double diff_hot = hot[0] - hot[spreader];
  const double diff_frac = (diff_now - diff_cold) / (diff_hot - diff_cold);
  EXPECT_GT(diff_frac, 0.8);
  // ...while the sink's absolute response has barely begun (tau ≈ 960 s).
  const double sink_frac =
      (tr.temperatures()[sink] - cold[sink]) / (hot[sink] - cold[sink]);
  EXPECT_LT(sink_frac, 0.05);
}

TEST(TransientTest, MicrosecondStepsAreStable) {
  const RcNetwork net = small_net();
  const auto p = uniform_power(net.num_blocks(), 4.0);
  Transient tr(net, net.steady_state(p), 1e-6);
  for (int i = 0; i < 10000; ++i) tr.step(p);
  for (double t : tr.temperatures()) {
    EXPECT_GT(t, 300.0);
    EXPECT_LT(t, 450.0);
  }
  EXPECT_NEAR(tr.elapsed(), 0.01, 1e-9);
}

TEST(TransientTest, RejectsBadInputs) {
  const RcNetwork net = small_net();
  EXPECT_THROW(Transient(net, {1.0, 2.0}, 1e-6), InvalidArgument);
  std::vector<double> init(net.num_nodes(), 318.0);
  EXPECT_THROW(Transient(net, init, 0.0), InvalidArgument);
  Transient tr(net, init, 1e-6);
  EXPECT_THROW(tr.step({1.0}), InvalidArgument);
}

TEST(RcNetworkTest, RejectsBadConfig) {
  ThermalConfig cfg;
  cfg.r_convec_k_per_w = 0.0;
  EXPECT_THROW(small_net(cfg), InvalidArgument);
  cfg = {};
  cfg.ambient_k = -1;
  EXPECT_THROW(small_net(cfg), InvalidArgument);
}

TEST(RcNetworkTest, PowerVectorSizeChecked) {
  const RcNetwork net = small_net();
  EXPECT_THROW(net.steady_state(std::vector<double>{1.0}), InvalidArgument);
}

TEST(RcNetworkTest, NegativePowerRejected) {
  const RcNetwork net = small_net();
  auto p = uniform_power(net.num_blocks(), 1.0);
  p[0] = -2.0;
  EXPECT_THROW(net.steady_state(p), InvalidArgument);
}

}  // namespace
}  // namespace ramp::thermal
