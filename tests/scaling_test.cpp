// Tests for the Table 4 technology-node tables.
#include "scaling/technology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ramp::scaling {
namespace {

TEST(TechnologyTest, FiveNodesInPaperOrder) {
  const auto& nodes = standard_nodes();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes[0].name, "180nm");
  EXPECT_EQ(nodes[1].name, "130nm");
  EXPECT_EQ(nodes[2].name, "90nm");
  EXPECT_EQ(nodes[3].name, "65nm (0.9V)");
  EXPECT_EQ(nodes[4].name, "65nm (1.0V)");
}

TEST(TechnologyTest, Table4Values) {
  const TechnologyNode& base = node(TechPoint::k180nm);
  EXPECT_DOUBLE_EQ(base.vdd, 1.3);
  EXPECT_DOUBLE_EQ(base.frequency_hz, 1.1e9);
  EXPECT_DOUBLE_EQ(base.tox_nm, 2.5);
  EXPECT_DOUBLE_EQ(base.jmax_ma_per_um2, 9.0);
  EXPECT_DOUBLE_EQ(base.leakage_w_per_mm2_at_383k, 0.040);

  const TechnologyNode& n65 = node(TechPoint::k65nm_1V0);
  EXPECT_DOUBLE_EQ(n65.vdd, 1.0);
  EXPECT_DOUBLE_EQ(n65.frequency_hz, 2.0e9);
  EXPECT_DOUBLE_EQ(n65.relative_area, 0.16);
  EXPECT_DOUBLE_EQ(n65.tox_nm, 0.9);
  EXPECT_DOUBLE_EQ(n65.leakage_w_per_mm2_at_383k, 0.60);
}

TEST(TechnologyTest, The65nmPointsDifferOnlyInVoltageAndLeakage) {
  const TechnologyNode& a = node(TechPoint::k65nm_0V9);
  const TechnologyNode& b = node(TechPoint::k65nm_1V0);
  EXPECT_EQ(a.feature_nm, b.feature_nm);
  EXPECT_EQ(a.frequency_hz, b.frequency_hz);
  EXPECT_EQ(a.relative_area, b.relative_area);
  EXPECT_EQ(a.tox_nm, b.tox_nm);
  EXPECT_EQ(a.jmax_ma_per_um2, b.jmax_ma_per_um2);
  EXPECT_LT(a.vdd, b.vdd);
  EXPECT_LT(a.leakage_w_per_mm2_at_383k, b.leakage_w_per_mm2_at_383k);
}

TEST(TechnologyTest, FrequencyScalesAbout22PercentPerGeneration) {
  // §4.6: conservative 22% frequency growth per generation.
  const auto& nodes = standard_nodes();
  for (std::size_t i = 1; i < 3; ++i) {
    const double growth = nodes[i].frequency_hz / nodes[i - 1].frequency_hz;
    EXPECT_NEAR(growth, 1.22, 0.02) << nodes[i].name;
  }
}

TEST(TechnologyTest, LinearScaleMatchesAreaScale) {
  // relative_area ≈ linear_scale² (Table 4 rounds area to 0.16 at 65 nm).
  for (const auto& n : standard_nodes()) {
    EXPECT_NEAR(n.relative_area, n.linear_scale * n.linear_scale, 0.011)
        << n.name;
  }
}

TEST(TechnologyTest, EmCrossSectionShrinksQuadratically) {
  EXPECT_DOUBLE_EQ(node(TechPoint::k180nm).em_wh_relative(), 1.0);
  EXPECT_NEAR(node(TechPoint::k130nm).em_wh_relative(), 0.49, 1e-12);
  EXPECT_NEAR(node(TechPoint::k65nm_1V0).em_wh_relative(), 0.392 * 0.392, 1e-12);
}

TEST(TechnologyTest, InterconnectCurrentDensityFlattensAt90nm) {
  // §4.6: 33% reduction per generation until 90 nm, flat afterwards.
  EXPECT_GT(node(TechPoint::k130nm).jmax_ma_per_um2,
            node(TechPoint::k90nm).jmax_ma_per_um2);
  EXPECT_DOUBLE_EQ(node(TechPoint::k90nm).jmax_ma_per_um2,
                   node(TechPoint::k65nm_1V0).jmax_ma_per_um2);
}

TEST(TechnologyTest, DynamicPowerScaleReproducesTable4PowerTrend) {
  // P_dyn ∝ C V² f relative to 180 nm; the resulting factors drive the
  // Table 4 total-power column (29.1 → 19.0 → 14.7 → 14.4 → 16.9 W).
  const TechnologyNode& base = base_node();
  EXPECT_DOUBLE_EQ(base.dynamic_power_scale(base), 1.0);
  EXPECT_NEAR(node(TechPoint::k130nm).dynamic_power_scale(base), 0.615, 0.01);
  EXPECT_NEAR(node(TechPoint::k90nm).dynamic_power_scale(base), 0.435, 0.01);
  EXPECT_NEAR(node(TechPoint::k65nm_0V9).dynamic_power_scale(base), 0.349, 0.01);
  EXPECT_NEAR(node(TechPoint::k65nm_1V0).dynamic_power_scale(base), 0.430, 0.01);
}

TEST(TechnologyTest, AnalyticTable4PowerColumn) {
  // Check the full Table 4 power reconstruction analytically: dynamic part
  // from the 180 nm value (≈26.9 W) times the CV²f factor, plus leakage at
  // a representative ~360 K die temperature. Matches Table 4 within ~1 W.
  const double base_dynamic = 26.9;
  const double beta = 0.017;
  const struct { TechPoint p; double want; } rows[] = {
      {TechPoint::k180nm, 29.1},
      {TechPoint::k130nm, 19.0},
      {TechPoint::k90nm, 14.7},
      {TechPoint::k65nm_0V9, 14.4},
      {TechPoint::k65nm_1V0, 16.9},
  };
  for (const auto& row : rows) {
    const TechnologyNode& n = node(row.p);
    const double dyn = base_dynamic * n.dynamic_power_scale(base_node());
    const double leak = n.leakage_w_per_mm2_at_383k * 81.0 * n.relative_area *
                        std::exp(beta * (360.0 - 383.0));
    EXPECT_NEAR(dyn + leak, row.want, 1.2) << n.name;
  }
}

TEST(TechnologyTest, CycleTime) {
  EXPECT_NEAR(base_node().cycle_time_s(), 1.0 / 1.1e9, 1e-15);
}

TEST(TechnologyTest, TechNameLookup) {
  EXPECT_EQ(tech_name(TechPoint::k90nm), "90nm");
}

}  // namespace
}  // namespace ramp::scaling
