// Tests for the structural-redundancy lifetime extension.
#include "core/redundancy.hpp"

#include <gtest/gtest.h>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {
namespace {

FitSummary uniform_summary(double fit_per_cell) {
  FitSummary s;
  for (auto& row : s.by_structure) {
    for (int m = 0; m < kNumMechanisms - 1; ++m) {
      row[static_cast<std::size_t>(m)] = fit_per_cell;
    }
  }
  s.tc_fit = fit_per_cell;
  return s;
}

TEST(SparePlanTest, UniformAndTotals) {
  const SparePlan plan = SparePlan::uniform(2);
  EXPECT_EQ(plan.total(), 2 * sim::kNumStructures);
  for (int n : plan.spares) EXPECT_EQ(n, 2);
  EXPECT_EQ(SparePlan{}.total(), 0);
}

TEST(SparePlanTest, AreaOverhead) {
  SparePlan plan;
  plan.spares[sim::idx(sim::StructureId::kFxu)] = 1;
  EXPECT_NEAR(plan.area_overhead(),
              sim::structure_area_fraction(sim::StructureId::kFxu), 1e-12);
  EXPECT_NEAR(SparePlan::uniform(1).area_overhead(), 1.0, 1e-12);
}

TEST(SparePlanTest, NegativeSparesRejected) {
  SparePlan plan;
  plan.spares[0] = -1;
  EXPECT_THROW(plan.total(), InvalidArgument);
}

TEST(RedundantLifetimeTest, ZeroSparesMatchesPlainEngine) {
  const FitSummary s = uniform_summary(200.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kExponential;
  const RedundantLifetimeMonteCarlo red(s, SparePlan{}, cfg);
  const LifetimeMonteCarlo plain(s, cfg);
  const auto a = red.estimate(60000, 3);
  const auto b = plain.estimate(60000, 3);
  // Same model, same structure — means agree statistically.
  EXPECT_NEAR(a.mean_years, b.mean_years, b.mean_years * 0.05);
  EXPECT_DOUBLE_EQ(a.sofr_years, b.sofr_years);
}

TEST(RedundantLifetimeTest, SparesExtendLifetime) {
  const FitSummary s = uniform_summary(200.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kWeibull;
  auto mean_with = [&](int spares) {
    return RedundantLifetimeMonteCarlo(s, SparePlan::uniform(spares), cfg)
        .estimate(30000, 4)
        .mean_years;
  };
  const double none = mean_with(0);
  const double one = mean_with(1);
  const double two = mean_with(2);
  EXPECT_GT(one, 1.5 * none);
  EXPECT_GT(two, one);
}

TEST(RedundantLifetimeTest, TcIsNotSparable) {
  // With huge spare counts everywhere, the package TC term must still cap
  // the lifetime near its own MTTF.
  FitSummary s;
  s.tc_fit = 1000.0;  // 1000 FIT => ~114 years MTTF
  // Tiny structure-level rates so structures effectively never fail.
  s.by_structure[0][0] = 1e-6;
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kExponential;
  const RedundantLifetimeMonteCarlo red(s, SparePlan::uniform(10), cfg);
  const auto est = red.estimate(50000, 5);
  EXPECT_NEAR(est.mean_years, mttf_years_from_fit(1000.0),
              mttf_years_from_fit(1000.0) * 0.05);
}

TEST(RedundantLifetimeTest, SparingOnlyTheWeakestStructureHelpsMost) {
  // Concentrate the failure rate in the LSU; sparing the LSU must beat
  // sparing the (healthy) BXU at equal spare budget.
  FitSummary s;
  s.by_structure[sim::idx(sim::StructureId::kLsu)]
                [static_cast<std::size_t>(Mechanism::kEm)] = 3000.0;
  s.by_structure[sim::idx(sim::StructureId::kBxu)]
                [static_cast<std::size_t>(Mechanism::kEm)] = 100.0;
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kWeibull;

  SparePlan spare_lsu;
  spare_lsu.spares[sim::idx(sim::StructureId::kLsu)] = 1;
  SparePlan spare_bxu;
  spare_bxu.spares[sim::idx(sim::StructureId::kBxu)] = 1;

  const double with_lsu =
      RedundantLifetimeMonteCarlo(s, spare_lsu, cfg).estimate(30000, 6).mean_years;
  const double with_bxu =
      RedundantLifetimeMonteCarlo(s, spare_bxu, cfg).estimate(30000, 6).mean_years;
  EXPECT_GT(with_lsu, 1.3 * with_bxu);
}

TEST(RedundantLifetimeTest, DeterministicForSeed) {
  const FitSummary s = uniform_summary(150.0);
  const RedundantLifetimeMonteCarlo red(s, SparePlan::uniform(1), {});
  const auto a = red.estimate(5000, 11);
  const auto b = red.estimate(5000, 11);
  EXPECT_DOUBLE_EQ(a.mean_years, b.mean_years);
}

TEST(RedundantLifetimeTest, AllZeroThrows) {
  FitSummary s;
  EXPECT_THROW(RedundantLifetimeMonteCarlo(s, SparePlan{}, {}),
               InvalidArgument);
}

// With per-sample SplitMix64 substreams, zero spares consume the identical
// draw sequence as the plain engine (same instance order, one uniform per
// exponential draw), so the two estimates agree bit-for-bit — not just
// statistically.
TEST(RedundantLifetimeTest, ZeroSparesBitIdenticalToPlainEngine) {
  const FitSummary s = uniform_summary(180.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kExponential;
  const auto a = RedundantLifetimeMonteCarlo(s, SparePlan{}, cfg)
                     .estimate(20000, 9);
  const auto b = LifetimeMonteCarlo(s, cfg).estimate(20000, 9);
  EXPECT_DOUBLE_EQ(a.mean_years, b.mean_years);
  EXPECT_DOUBLE_EQ(a.median_years, b.median_years);
  EXPECT_DOUBLE_EQ(a.p05_years, b.p05_years);
  EXPECT_DOUBLE_EQ(a.p95_years, b.p95_years);
}

// Closed form for one exponential unit with one cold spare: the structure's
// death time is Erlang(2, lambda), so the mean is 2/lambda and the median
// solves (1 + lambda t) e^{-lambda t} = 1/2, i.e. t = 1.67835 / lambda.
TEST(RedundantLifetimeTest, OneColdSpareMatchesErlangClosedForm) {
  FitSummary s;
  s.by_structure[sim::idx(sim::StructureId::kFxu)]
                [static_cast<std::size_t>(Mechanism::kEm)] = 500.0;
  const double mttf = mttf_years_from_fit(500.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kExponential;
  SparePlan plan;
  plan.spares[sim::idx(sim::StructureId::kFxu)] = 1;

  const auto est =
      RedundantLifetimeMonteCarlo(s, plan, cfg).estimate(200000, 17);
  EXPECT_NEAR(est.mean_years, 2.0 * mttf, 2.0 * mttf * 0.02);
  EXPECT_NEAR(est.median_years, 1.67835 * mttf, 1.67835 * mttf * 0.02);
  // Survival at the single-unit MTTF: (1 + 1) e^{-1} = 0.7358, so the 5th
  // percentile sits well below it and the 95th well above.
  EXPECT_LT(est.p05_years, mttf);
  EXPECT_GT(est.p95_years, 2.0 * mttf);
}

}  // namespace
}  // namespace ramp::core
