// Tests for lifetime distributions and the Monte Carlo series-system engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lifetime_mc.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace ramp::core {
namespace {

TEST(LifetimeDistributionTest, ExponentialMeanAndCdf) {
  ExponentialLifetime d(30.0);
  EXPECT_DOUBLE_EQ(d.mttf(), 30.0);
  EXPECT_NEAR(d.cdf(30.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);

  Xoshiro256 rng(1);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 30.0, 0.3);
}

TEST(LifetimeDistributionTest, WeibullMeanMatchesRequestedMttf) {
  for (double beta : {0.8, 1.0, 1.5, 2.0, 3.0}) {
    WeibullLifetime d(30.0, beta);
    Xoshiro256 rng(static_cast<std::uint64_t>(beta * 100));
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += d.sample(rng);
    EXPECT_NEAR(sum / n, 30.0, 0.6) << "beta=" << beta;
  }
}

TEST(LifetimeDistributionTest, WeibullBetaOneIsExponential) {
  WeibullLifetime w(30.0, 1.0);
  ExponentialLifetime e(30.0);
  for (double t : {1.0, 10.0, 30.0, 100.0}) {
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-9);
  }
}

TEST(LifetimeDistributionTest, WearoutHasThinnerEarlyTail) {
  // The whole point of beta > 1: far fewer early failures at equal MTTF.
  WeibullLifetime wearout(30.0, 2.5);
  ExponentialLifetime constant(30.0);
  EXPECT_LT(wearout.cdf(3.0), constant.cdf(3.0) / 3.0);
}

TEST(LifetimeDistributionTest, LognormalMeanMatchesRequestedMttf) {
  for (double sigma : {0.3, 0.5, 1.0}) {
    LognormalLifetime d(30.0, sigma);
    Xoshiro256 rng(static_cast<std::uint64_t>(sigma * 1000));
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) sum += d.sample(rng);
    EXPECT_NEAR(sum / n, 30.0, 0.9) << "sigma=" << sigma;
  }
}

TEST(LifetimeDistributionTest, CdfIsMonotone) {
  WeibullLifetime d(30.0, 2.0);
  double prev = -1.0;
  for (double t = 0.0; t <= 120.0; t += 5.0) {
    const double c = d.cdf(t);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(LifetimeDistributionTest, FactoryAndNames) {
  EXPECT_EQ(make_lifetime(LifetimeFamily::kExponential, 10, 2)->name(),
            "exponential");
  EXPECT_EQ(make_lifetime(LifetimeFamily::kWeibull, 10, 2)->name(), "weibull");
  EXPECT_EQ(make_lifetime(LifetimeFamily::kLognormal, 10, 0.5)->name(),
            "lognormal");
  EXPECT_EQ(family_name(LifetimeFamily::kWeibull), "weibull");
}

TEST(LifetimeDistributionTest, RejectsBadParameters) {
  EXPECT_THROW(ExponentialLifetime(0.0), InvalidArgument);
  EXPECT_THROW(WeibullLifetime(10.0, 0.0), InvalidArgument);
  EXPECT_THROW(LognormalLifetime(10.0, -0.5), InvalidArgument);
}

FitSummary uniform_summary(double fit_per_cell) {
  FitSummary s;
  for (auto& row : s.by_structure) {
    for (int m = 0; m < kNumMechanisms - 1; ++m) {
      row[static_cast<std::size_t>(m)] = fit_per_cell;
    }
  }
  s.tc_fit = fit_per_cell;
  return s;
}

TEST(LifetimeMonteCarloTest, ExponentialMatchesSofrClosedForm) {
  // The validation property: with exponential lifetimes, MC mean == SOFR.
  const FitSummary s = uniform_summary(200.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kExponential;
  LifetimeMonteCarlo mc(s, cfg);
  const auto est = mc.estimate(100000, 7);
  EXPECT_NEAR(est.mean_years / est.sofr_years, 1.0, 0.02);
  EXPECT_NEAR(est.sofr_years, mttf_years_from_fit(s.total()), 1e-9);
}

TEST(LifetimeMonteCarloTest, WearoutBeatsSofr) {
  // §2's known pessimism: wear-out (beta > 1) series systems outlive the
  // constant-rate prediction at equal per-instance MTTFs.
  const FitSummary s = uniform_summary(200.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kWeibull;
  cfg.shape = {2.0, 2.0, 2.0, 2.0};
  LifetimeMonteCarlo mc(s, cfg);
  const auto est = mc.estimate(50000, 8);
  EXPECT_GT(est.vs_sofr(), 1.5);
  EXPECT_LT(est.vs_sofr(), 6.0);
  // Percentiles must be ordered.
  EXPECT_LT(est.p05_years, est.median_years);
  EXPECT_LT(est.median_years, est.p95_years);
}

TEST(LifetimeMonteCarloTest, HigherBetaMeansLongerSeriesLife) {
  const FitSummary s = uniform_summary(200.0);
  auto mean_at = [&](double beta) {
    LifetimeModelConfig cfg;
    cfg.family = LifetimeFamily::kWeibull;
    cfg.shape = {beta, beta, beta, beta};
    return LifetimeMonteCarlo(s, cfg).estimate(30000, 9).mean_years;
  };
  EXPECT_LT(mean_at(1.2), mean_at(2.0));
  EXPECT_LT(mean_at(2.0), mean_at(3.0));
}

TEST(LifetimeMonteCarloTest, EmpiricalSurvivalMatchesAnalytic) {
  const FitSummary s = uniform_summary(150.0);
  LifetimeModelConfig cfg;
  cfg.family = LifetimeFamily::kWeibull;
  LifetimeMonteCarlo mc(s, cfg);
  Xoshiro256 rng(10);
  // Empirical survival at one probe time vs the analytic product form.
  const double probe = 20.0;
  const auto est = mc.estimate(1, 11);  // warm the API
  (void)est;
  int survived = 0;
  const int n = 40000;
  LifetimeMonteCarlo mc2(s, cfg);
  for (int i = 0; i < n; ++i) {
    // One series draw: sample every instance via a fresh estimate of 1.
    // (Use the public estimate() with distinct seeds for determinism.)
    const auto e = mc2.estimate(1, static_cast<std::uint64_t>(i) + 100);
    if (e.mean_years > probe) ++survived;
  }
  EXPECT_NEAR(static_cast<double>(survived) / n, mc2.survival(probe), 0.02);
}

TEST(LifetimeMonteCarloTest, SkipsZeroFitInstances) {
  FitSummary s;
  s.tc_fit = 500.0;  // only one active instance
  LifetimeModelConfig cfg;
  LifetimeMonteCarlo mc(s, cfg);
  EXPECT_EQ(mc.num_instances(), 1u);
}

TEST(LifetimeMonteCarloTest, AllZeroThrows) {
  FitSummary s;
  EXPECT_THROW(LifetimeMonteCarlo(s, {}), InvalidArgument);
}

TEST(LifetimeMonteCarloTest, DeterministicForSeed) {
  const FitSummary s = uniform_summary(100.0);
  LifetimeMonteCarlo mc(s, {});
  const auto a = mc.estimate(5000, 42);
  const auto b = mc.estimate(5000, 42);
  EXPECT_DOUBLE_EQ(a.mean_years, b.mean_years);
  EXPECT_DOUBLE_EQ(a.median_years, b.median_years);
}

}  // namespace
}  // namespace ramp::core
