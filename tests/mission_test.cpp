// Tests for mission-profile reliability evaluation.
#include "pipeline/mission.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ramp::pipeline {
namespace {

const SweepResult& quick_sweep() {
  static const SweepResult sweep = [] {
    EvaluationConfig cfg;
    cfg.trace_instructions = 20'000;
    SweepRunner::Options opts;
    opts.cache_path.clear();
    return SweepRunner(std::move(cfg), std::move(opts)).run();
  }();
  return sweep;
}

TEST(MissionTest, FullDutySingleWorkloadMatchesSweepCell) {
  // 24 h/day of one workload with the reference 1 cycle/day reproduces the
  // sweep's qualified FIT for that cell.
  MissionProfile p{"always-gcc", {{"gcc", 24.0}}, 1.0};
  const auto fit =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k180nm, p);
  const auto cell = quick_sweep().qualified_fits(
      quick_sweep().at("gcc", scaling::TechPoint::k180nm));
  EXPECT_NEAR(fit.total(), cell.total(), cell.total() * 1e-9);
}

TEST(MissionTest, HalfDutyHalvesWearoutMechanisms) {
  MissionProfile full{"f", {{"crafty", 24.0}}, 1.0};
  MissionProfile half{"h", {{"crafty", 12.0}}, 1.0};
  const auto f =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k90nm, full);
  const auto h =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k90nm, half);
  EXPECT_NEAR(h.em, f.em / 2.0, f.em * 1e-9);
  EXPECT_NEAR(h.sm, f.sm / 2.0, f.sm * 1e-9);
  EXPECT_NEAR(h.tddb, f.tddb / 2.0, f.tddb * 1e-9);
  // TC depends on cycles, not duty: unchanged.
  EXPECT_NEAR(h.tc, f.tc, f.tc * 1e-9);
}

TEST(MissionTest, PowerCyclesScaleTcLinearly) {
  MissionProfile one{"1", {{"mesa", 8.0}}, 1.0};
  MissionProfile six{"6", {{"mesa", 8.0}}, 6.0};
  const auto a =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k130nm, one);
  const auto b =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k130nm, six);
  EXPECT_NEAR(b.tc, 6.0 * a.tc, a.tc * 1e-9);
  EXPECT_NEAR(b.em, a.em, a.em * 1e-9);
}

TEST(MissionTest, MixedSegmentsAreTimeWeighted) {
  MissionProfile mix{"mix", {{"crafty", 6.0}, {"ammp", 18.0}}, 1.0};
  const auto m =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k65nm_1V0, mix);
  const auto crafty = quick_sweep().qualified_fits(
      quick_sweep().at("crafty", scaling::TechPoint::k65nm_1V0));
  const auto ammp = quick_sweep().qualified_fits(
      quick_sweep().at("ammp", scaling::TechPoint::k65nm_1V0));
  const double em_expected =
      crafty.by_mechanism()[0] * 6.0 / 24.0 + ammp.by_mechanism()[0] * 18.0 / 24.0;
  EXPECT_NEAR(m.em, em_expected, em_expected * 1e-9);
}

TEST(MissionTest, IdleTimeExtendsLifetime) {
  // A lighter mission must have a longer MTTF than 24/7 operation.
  MissionProfile full{"f", {{"gap", 24.0}}, 1.0};
  MissionProfile light{"l", {{"gap", 6.0}}, 1.0};
  const auto f =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k65nm_1V0, full);
  const auto l =
      evaluate_mission(quick_sweep(), scaling::TechPoint::k65nm_1V0, light);
  EXPECT_GT(l.mttf_years(), 1.5 * f.mttf_years());
}

TEST(MissionTest, ExampleMissionsEvaluate) {
  for (const auto& mission : example_missions()) {
    const auto fit =
        evaluate_mission(quick_sweep(), scaling::TechPoint::k65nm_1V0, mission);
    EXPECT_GT(fit.total(), 0.0) << mission.name;
    EXPECT_GT(fit.mttf_years(), 0.0) << mission.name;
  }
}

TEST(MissionTest, RejectsBadProfiles) {
  const auto& sweep = quick_sweep();
  EXPECT_THROW(
      evaluate_mission(sweep, scaling::TechPoint::k180nm, {"empty", {}, 1.0}),
      InvalidArgument);
  EXPECT_THROW(evaluate_mission(sweep, scaling::TechPoint::k180nm,
                                {"too-long", {{"gcc", 30.0}}, 1.0}),
               InvalidArgument);
  EXPECT_THROW(evaluate_mission(sweep, scaling::TechPoint::k180nm,
                                {"unknown", {{"doom3", 8.0}}, 1.0}),
               InvalidArgument);
  EXPECT_THROW(evaluate_mission(sweep, scaling::TechPoint::k180nm,
                                {"neg", {{"gcc", 8.0}}, -1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace ramp::pipeline
