// Shard-metrics merge semantics (serve/metrics_merge.hpp): counters and
// gauges sum, histograms sum per-bucket, bucket-bound disagreement is a
// protocol error, stage profiles accumulate, and the merged result renders
// through the stock exporters. Pure-function tests — the sharded front's
// socket plumbing is covered end to end in cli_test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "serve/metrics_merge.hpp"
#include "util/error.hpp"

namespace ramp::serve {
namespace {

/// A realistic shard snapshot: what obs::to_ndjson emits, parsed back.
Json shard_snapshot(std::uint64_t requests, double queue_depth,
                    const std::vector<std::uint64_t>& bucket_counts,
                    double hist_sum, std::uint64_t hist_count,
                    double sim_seconds = 0.0, std::uint64_t sim_spans = 0) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  reg.counter("ramp_serve_requests_total").inc(requests);
  reg.gauge("ramp_serve_queue_depth").set(queue_depth);
  (void)reg.histogram("ramp_serve_latency_seconds", {0.001, 0.01, 0.1, 1.0});
  obs::MetricsSnapshot snap = reg.snapshot();
  // Histograms need exact bucket contents; patch the snapshot directly
  // rather than reverse-engineering observations.
  for (auto& hist : snap.histograms) {
    if (hist.name == "ramp_serve_latency_seconds") {
      hist.counts = bucket_counts;
      hist.sum = hist_sum;
      hist.count = hist_count;
    }
  }
  obs::StageProfile profile;
  profile.totals[static_cast<std::size_t>(obs::Stage::kSim)].seconds =
      sim_seconds;
  profile.totals[static_cast<std::size_t>(obs::Stage::kSim)].spans =
      sim_spans;
  const bool with_profile = sim_spans > 0;
  return Json::parse(
      obs::to_ndjson(snap, with_profile ? &profile : nullptr));
}

TEST(MetricsMergeTest, CountersGaugesAndHistogramsSumAcrossShards) {
  const std::vector<Json> snaps = {
      shard_snapshot(10, 2.0, {1, 2, 3, 4, 5}, 0.5, 15),
      shard_snapshot(32, 3.0, {10, 0, 0, 0, 1}, 1.25, 11),
  };
  const MergedMetrics merged = merge_metrics_snapshots(snaps);

  bool saw_counter = false;
  for (const auto& [name, v] : merged.snap.counters) {
    if (name == "ramp_serve_requests_total") {
      EXPECT_EQ(v, 42u);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_counter);

  bool saw_gauge = false;
  for (const auto& [name, v] : merged.snap.gauges) {
    if (name == "ramp_serve_queue_depth") {
      EXPECT_DOUBLE_EQ(v, 5.0);
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_gauge);

  bool saw_hist = false;
  for (const auto& h : merged.snap.histograms) {
    if (h.name != "ramp_serve_latency_seconds") continue;
    saw_hist = true;
    ASSERT_EQ(h.bounds.size(), 4u);
    ASSERT_EQ(h.counts.size(), 5u);
    const std::vector<std::uint64_t> expect = {11, 2, 3, 4, 6};
    EXPECT_EQ(h.counts, expect);
    EXPECT_DOUBLE_EQ(h.sum, 1.75);
    EXPECT_EQ(h.count, 26u);
  }
  EXPECT_TRUE(saw_hist);
}

TEST(MetricsMergeTest, StageProfilesAccumulateSecondsAndSpans) {
  const std::vector<Json> snaps = {
      shard_snapshot(1, 0.0, {0, 0, 0, 0, 0}, 0.0, 0, 1.5, 3),
      shard_snapshot(1, 0.0, {0, 0, 0, 0, 0}, 0.0, 0, 0.5, 2),
  };
  const MergedMetrics merged = merge_metrics_snapshots(snaps);
  EXPECT_TRUE(merged.has_profile);
  const auto& sim =
      merged.profile.totals[static_cast<std::size_t>(obs::Stage::kSim)];
  EXPECT_DOUBLE_EQ(sim.seconds, 2.0);
  EXPECT_EQ(sim.spans, 5u);
}

TEST(MetricsMergeTest, MismatchedBucketBoundsAreAProtocolError) {
  Json a = shard_snapshot(1, 0.0, {1, 1, 1, 1, 1}, 1.0, 5);
  // Same histogram name, different bounds: per-bucket addition would be
  // silently wrong, so the merge must refuse.
  Json b = Json::parse(
      R"({"counters":{},"gauges":{},"histograms":)"
      R"({"ramp_serve_latency_seconds":)"
      R"({"bounds":[0.5,1.0],"counts":[1,2,3],"sum":1.0,"count":6}}})");
  EXPECT_THROW(merge_metrics_snapshots({a, b}), std::exception);
}

TEST(MetricsMergeTest, MergedViewRendersThroughStockExporters) {
  const std::vector<Json> snaps = {
      shard_snapshot(7, 1.0, {1, 0, 0, 0, 0}, 0.25, 1, 0.75, 2),
      shard_snapshot(5, 0.0, {0, 1, 0, 0, 0}, 0.50, 1, 0.25, 1),
  };
  const MergedMetrics merged = merge_metrics_snapshots(snaps);

  const std::string prom = merged_prometheus(merged);
  const auto samples = obs::parse_prometheus_text(prom);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_requests_total"), 12.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_latency_seconds_count"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("ramp_serve_latency_seconds_sum"), 0.75);

  // The NDJSON re-encoding is itself a valid merge input: merging the
  // merged document with an empty fleet is the identity.
  const Json round = Json::parse(merged_ndjson(merged));
  const MergedMetrics again = merge_metrics_snapshots({round});
  EXPECT_EQ(merged_ndjson(again), merged_ndjson(merged));
}

TEST(MetricsMergeTest, EmptyInputMergesToEmptySnapshot) {
  const MergedMetrics merged = merge_metrics_snapshots({});
  EXPECT_TRUE(merged.snap.counters.empty());
  EXPECT_TRUE(merged.snap.histograms.empty());
  EXPECT_FALSE(merged.has_profile);
}

}  // namespace
}  // namespace ramp::serve
