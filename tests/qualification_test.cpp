// Tests for reliability qualification (paper §4.4).
#include "core/qualification.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ramp::core {
namespace {

FitSummary summary_with(double em, double sm, double tddb, double tc) {
  FitSummary s;
  s.by_structure[0][static_cast<std::size_t>(Mechanism::kEm)] = em;
  s.by_structure[0][static_cast<std::size_t>(Mechanism::kSm)] = sm;
  s.by_structure[0][static_cast<std::size_t>(Mechanism::kTddb)] = tddb;
  s.tc_fit = tc;
  return s;
}

TEST(QualificationTest, NormalizesEachMechanismTo1000) {
  const std::vector<FitSummary> raw = {
      summary_with(2.0, 4.0, 8.0, 16.0),
      summary_with(4.0, 4.0, 8.0, 16.0),
  };
  const MechanismConstants k = qualify(raw);
  // Mechanism averages: 3, 4, 8, 16 => constants 1000/avg.
  EXPECT_NEAR(k.em, 1000.0 / 3.0, 1e-9);
  EXPECT_NEAR(k.sm, 250.0, 1e-9);
  EXPECT_NEAR(k.tddb, 125.0, 1e-9);
  EXPECT_NEAR(k.tc, 62.5, 1e-9);
}

TEST(QualificationTest, QualifiedSuiteAverages4000Fit) {
  const std::vector<FitSummary> raw = {
      summary_with(1.0, 2.0, 3.0, 4.0),
      summary_with(3.0, 2.0, 5.0, 4.0),
      summary_with(2.0, 2.0, 4.0, 4.0),
  };
  const MechanismConstants k = qualify(raw);
  double total = 0.0;
  for (const auto& s : raw) {
    const auto by_mech = s.by_mechanism();
    for (int m = 0; m < kNumMechanisms; ++m) {
      total += by_mech[static_cast<std::size_t>(m)] *
               k.get(static_cast<Mechanism>(m));
    }
  }
  EXPECT_NEAR(total / 3.0, 4000.0, 1e-6);
}

TEST(QualificationTest, CustomTarget) {
  const std::vector<FitSummary> raw = {summary_with(2.0, 2.0, 2.0, 2.0)};
  const MechanismConstants k = qualify(raw, {.fit_per_mechanism = 500.0});
  EXPECT_NEAR(k.em, 250.0, 1e-9);
}

TEST(QualificationTest, ZeroMechanismThrows) {
  const std::vector<FitSummary> raw = {summary_with(1.0, 1.0, 0.0, 1.0)};
  EXPECT_THROW(qualify(raw), InvalidArgument);
}

TEST(QualificationTest, EmptySuiteThrows) {
  EXPECT_THROW(qualify({}), InvalidArgument);
}

TEST(QualificationTest, NonPositiveTargetThrows) {
  const std::vector<FitSummary> raw = {summary_with(1.0, 1.0, 1.0, 1.0)};
  EXPECT_THROW(qualify(raw, {.fit_per_mechanism = 0.0}), InvalidArgument);
}

}  // namespace
}  // namespace ramp::core
