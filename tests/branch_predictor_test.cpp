// Tests for the hybrid local/global branch predictor.
#include "sim/branch_predictor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ramp::sim {
namespace {

TEST(BranchPredictorTest, LearnsAlwaysTakenBranch) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1000, target = 0x2000;
  for (int i = 0; i < 10; ++i) bp.record_outcome(pc, true, target);
  EXPECT_FALSE(bp.mispredicted(pc, true, target));
  const auto p = bp.predict(pc);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, target);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTakenBranch) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1004;
  for (int i = 0; i < 10; ++i) bp.record_outcome(pc, false, 0);
  EXPECT_FALSE(bp.mispredicted(pc, false, 0));
}

TEST(BranchPredictorTest, WrongTargetCountsAsMispredict) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1008;
  for (int i = 0; i < 10; ++i) bp.record_outcome(pc, true, 0x4000);
  // Direction right but the BTB holds 0x4000, not 0x8000.
  EXPECT_TRUE(bp.mispredicted(pc, true, 0x8000));
  EXPECT_FALSE(bp.mispredicted(pc, true, 0x4000));
}

TEST(BranchPredictorTest, SelectorRecoversBiasedBranchesUnderNoisyHistory) {
  // A field of strongly biased branches with 5% noise: the hybrid must get
  // close to the noise floor because the local component ignores the
  // (noise-polluted) global history.
  BranchPredictor bp;
  Xoshiro256 rng(42);
  const int branches = 64;
  std::uint64_t miss = 0, total = 0;
  for (int round = 0; round < 4000; ++round) {
    for (int b = 0; b < branches; ++b) {
      const std::uint64_t pc = 0x1000 + static_cast<std::uint64_t>(b) * 4;
      const bool preferred = (b % 3) != 0;
      const bool taken = rng.bernoulli(0.05) ? !preferred : preferred;
      const bool m = bp.record_outcome(pc, taken, 0x9000 + static_cast<std::uint64_t>(b) * 64);
      if (round >= 200) {  // skip warmup
        total += 1;
        miss += m ? 1 : 0;
      }
    }
  }
  const double rate = static_cast<double>(miss) / static_cast<double>(total);
  EXPECT_LT(rate, 0.10);  // close to the 5% floor, far from gshare-thrash
  EXPECT_GT(rate, 0.03);
}

TEST(BranchPredictorTest, LearnsGlobalHistoryPattern) {
  // A single branch alternating T/N is history-predictable but not
  // bias-predictable: the global component must win.
  BranchPredictor bp;
  const std::uint64_t pc = 0x2000;
  bool taken = false;
  std::uint64_t miss = 0;
  for (int i = 0; i < 4000; ++i) {
    taken = !taken;
    if (i >= 1000 && bp.mispredicted(pc, taken, 0x3000)) ++miss;
    bp.update(pc, taken, 0x3000);
  }
  EXPECT_LT(static_cast<double>(miss) / 3000.0, 0.05);
}

TEST(BranchPredictorTest, CountersTrackLookups) {
  BranchPredictor bp;
  for (int i = 0; i < 100; ++i) bp.record_outcome(0x100, true, 0x200);
  EXPECT_EQ(bp.lookups(), 100u);
  EXPECT_LT(bp.mispredict_rate(), 0.1);
}

TEST(BranchPredictorTest, MispredictRateZeroWhenUnused) {
  BranchPredictor bp;
  EXPECT_DOUBLE_EQ(bp.mispredict_rate(), 0.0);
}

TEST(BranchPredictorTest, RejectsBadConfig) {
  BranchPredictorConfig cfg;
  cfg.btb_entries = 1000;  // not a power of two
  EXPECT_THROW(BranchPredictor{cfg}, InvalidArgument);
  cfg = {};
  cfg.history_bits = 0;
  EXPECT_THROW(BranchPredictor{cfg}, InvalidArgument);
  cfg = {};
  cfg.history_bits = 30;
  EXPECT_THROW(BranchPredictor{cfg}, InvalidArgument);
}

// Property sweep: across table sizes, a fully biased branch field with zero
// noise must become perfectly predictable.
class PredictorSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PredictorSizeTest, ZeroNoiseConvergesToZeroMisses) {
  BranchPredictorConfig cfg;
  cfg.local_bits = GetParam();
  cfg.history_bits = GetParam();
  cfg.selector_bits = GetParam();
  BranchPredictor bp(cfg);
  std::uint64_t late_miss = 0;
  for (int round = 0; round < 300; ++round) {
    for (int b = 0; b < 16; ++b) {
      const std::uint64_t pc = 0x5000 + static_cast<std::uint64_t>(b) * 4;
      const bool taken = (b % 2) == 0;
      const bool m = bp.record_outcome(pc, taken, 0x7000);
      if (round > 50 && m) ++late_miss;
    }
  }
  EXPECT_EQ(late_miss, 0u);
}

INSTANTIATE_TEST_SUITE_P(TableSizes, PredictorSizeTest,
                         ::testing::Values(6, 8, 10, 12, 14));

}  // namespace
}  // namespace ramp::sim
