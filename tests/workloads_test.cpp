// Tests for the SPEC2K workload suite definitions.
#include "workloads/spec2k.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace ramp::workloads {
namespace {

TEST(Spec2kSuiteTest, SixteenBenchmarksEightPerSuite) {
  EXPECT_EQ(spec2k_suite().size(), 16u);
  EXPECT_EQ(suite_workloads(Suite::kSpecFp).size(), 8u);
  EXPECT_EQ(suite_workloads(Suite::kSpecInt).size(), 8u);
}

TEST(Spec2kSuiteTest, NamesMatchTable3) {
  const std::set<std::string> expected = {
      "ammp", "applu", "sixtrack", "mgrid",   "mesa", "facerec",
      "wupwise", "apsi", "vpr",     "bzip2",  "twolf", "gzip",
      "perlbmk", "gap",  "gcc",     "crafty"};
  std::set<std::string> actual;
  for (const auto& w : spec2k_suite()) actual.insert(w.name);
  EXPECT_EQ(actual, expected);
}

TEST(Spec2kSuiteTest, Table3IpcValues) {
  EXPECT_DOUBLE_EQ(workload("ammp").table3_ipc, 1.06);
  EXPECT_DOUBLE_EQ(workload("bzip2").table3_ipc, 2.31);
  EXPECT_DOUBLE_EQ(workload("crafty").table3_ipc, 2.25);
  EXPECT_DOUBLE_EQ(workload("gcc").table3_power_w, 31.73);
}

TEST(Spec2kSuiteTest, SpecIntAverageIpcExceedsSpecFp) {
  // Table 3: SpecInt avg IPC 1.79 vs SpecFP 1.52.
  auto avg_ipc = [](Suite s) {
    double sum = 0;
    for (const auto& w : suite_workloads(s)) sum += w.table3_ipc;
    return sum / 8.0;
  };
  EXPECT_NEAR(avg_ipc(Suite::kSpecFp), 1.52, 0.02);
  EXPECT_NEAR(avg_ipc(Suite::kSpecInt), 1.79, 0.02);
}

TEST(Spec2kSuiteTest, FpAppsHaveFpOps) {
  for (const auto& w : suite_workloads(Suite::kSpecFp)) {
    EXPECT_GT(w.profile.op_mix[static_cast<int>(trace::OpClass::kFpAlu)], 0.0)
        << w.name;
  }
  for (const auto& w : suite_workloads(Suite::kSpecInt)) {
    EXPECT_EQ(w.profile.op_mix[static_cast<int>(trace::OpClass::kFpAlu)], 0.0)
        << w.name;
  }
}

TEST(Spec2kSuiteTest, ProfilesAreConstructible) {
  // Every profile must pass the generator's validation.
  for (const auto& w : spec2k_suite()) {
    EXPECT_NO_THROW(trace::SyntheticTrace(w.profile, 10, 1)) << w.name;
  }
}

TEST(Spec2kSuiteTest, PowerBiasNearUnity) {
  // The per-app calibration factor corrects second-order energy-per-op
  // differences only; values far from 1 would indicate a broken model.
  for (const auto& w : spec2k_suite()) {
    EXPECT_GT(w.power_bias, 0.8) << w.name;
    EXPECT_LT(w.power_bias, 1.3) << w.name;
  }
}

TEST(Spec2kSuiteTest, UnknownWorkloadThrows) {
  EXPECT_THROW(workload("doom3"), InvalidArgument);
}

TEST(Spec2kSuiteTest, SuiteNames) {
  EXPECT_STREQ(suite_name(Suite::kSpecFp), "SpecFP");
  EXPECT_STREQ(suite_name(Suite::kSpecInt), "SpecInt");
}

}  // namespace
}  // namespace ramp::workloads
