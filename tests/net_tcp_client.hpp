// Blocking NDJSON-over-TCP client for the net tests: one line out, one line
// in, no cleverness — the test harness end of the wire protocol.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <optional>
#include <string>

#include "net/socket.hpp"
#include "serve/server.hpp"

namespace ramp::net::testing {

/// Tests write to sockets the server may close first (drain, overload
/// rejection); without this the default SIGPIPE disposition kills the test
/// binary instead of surfacing EPIPE.
inline const bool kSigpipeIgnored = (serve::ignore_sigpipe(), true);

class LineClient {
 public:
  explicit LineClient(std::uint16_t port)
      : fd_(connect_tcp("127.0.0.1", port)) {}

  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

  /// Writes `line` plus a newline; false when the server hung up (EPIPE /
  /// ECONNRESET), which some tests deliberately provoke.
  bool send(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_.get(), out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Raw bytes, no newline appended — for sending deliberately incomplete
  /// lines before disconnecting.
  bool send_raw_no_newline(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::write(fd_.get(), bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Blocks for the next complete line; nullopt on EOF. Strips the newline.
  std::optional<std::string> recv_line() {
    while (true) {
      const std::size_t nl = inbuf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = inbuf_.substr(0, nl);
        inbuf_.erase(0, nl + 1);
        return line;
      }
      char buf[65536];
      const ssize_t n = ::read(fd_.get(), buf, sizeof buf);
      if (n > 0) {
        inbuf_.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;  // EOF or reset
    }
  }

 private:
  OwnedFd fd_;
  std::string inbuf_;
};

}  // namespace ramp::net::testing
