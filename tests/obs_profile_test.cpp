// Profiler and Span tests, plus the end-to-end acceptance check: running the
// evaluator under the global profiler yields a per-stage profile whose
// pipeline stages sum to within 10% of the recorded evaluator wall time.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/evaluator.hpp"
#include "scaling/technology.hpp"
#include "workloads/spec2k.hpp"

namespace ramp::obs {
namespace {

TEST(StageNameTest, CoversEveryStage) {
  EXPECT_EQ(stage_name(Stage::kTraceGen), "trace_gen");
  EXPECT_EQ(stage_name(Stage::kSim), "sim");
  EXPECT_EQ(stage_name(Stage::kPower), "power");
  EXPECT_EQ(stage_name(Stage::kThermal), "thermal");
  EXPECT_EQ(stage_name(Stage::kFit), "fit");
  EXPECT_EQ(stage_name(Stage::kCache), "cache");
  EXPECT_EQ(stage_name(Stage::kSchedule), "schedule");
  EXPECT_EQ(stage_name(Stage::kTotal), "total");
}

TEST(ProfilerTest, RecordAggregatesIntoTotals) {
  Profiler prof(/*enabled=*/true);
  prof.record(Stage::kSim, 1.0);
  prof.record(Stage::kSim, 0.5, 3);
  prof.record(Stage::kFit, 0.25);
  const StageProfile profile = prof.snapshot();
  // Totals round-trip through integer nanoseconds, hence NEAR.
  EXPECT_NEAR(profile.seconds(Stage::kSim), 1.5, 1e-9);
  EXPECT_EQ(profile.totals[static_cast<std::size_t>(Stage::kSim)].spans, 4u);
  EXPECT_NEAR(profile.seconds(Stage::kFit), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(profile.seconds(Stage::kThermal), 0.0);
}

TEST(ProfilerTest, RecordCellAttributesPerCell) {
  Profiler prof(/*enabled=*/true);
  prof.record_cell(Stage::kSim, "gcc@90", 1.0);
  prof.record_cell(Stage::kSim, "gcc@90", 0.5);
  prof.record_cell(Stage::kSim, "art@180", 0.25);
  const StageProfile profile = prof.snapshot();
  EXPECT_NEAR(profile.seconds(Stage::kSim), 1.75, 1e-9);
  ASSERT_EQ(profile.cells.count("gcc@90"), 1u);
  ASSERT_EQ(profile.cells.count("art@180"), 1u);
  // Cell accumulators keep the raw doubles, so these compare exactly.
  EXPECT_DOUBLE_EQ(
      profile.cells.at("gcc@90")[static_cast<std::size_t>(Stage::kSim)].seconds,
      1.5);
  EXPECT_EQ(
      profile.cells.at("gcc@90")[static_cast<std::size_t>(Stage::kSim)].spans,
      2u);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler prof(/*enabled=*/false);
  EXPECT_FALSE(prof.enabled());
  prof.record(Stage::kSim, 1.0);
  prof.record_cell(Stage::kSim, "gcc@90", 1.0);
  {
    Span span(Stage::kFit, prof);
    EXPECT_DOUBLE_EQ(span.stop(), 0.0);
  }
  const StageProfile profile = prof.snapshot();
  EXPECT_DOUBLE_EQ(profile.seconds(Stage::kSim), 0.0);
  EXPECT_TRUE(profile.cells.empty());
  EXPECT_TRUE(profile.recent.empty());
}

TEST(ProfilerTest, ResetZeroesEverything) {
  Profiler prof(/*enabled=*/true);
  prof.record_cell(Stage::kSim, "gcc@90", 1.0);
  prof.reset();
  const StageProfile profile = prof.snapshot();
  EXPECT_DOUBLE_EQ(profile.seconds(Stage::kSim), 0.0);
  EXPECT_TRUE(profile.cells.empty());
  EXPECT_TRUE(profile.recent.empty());
}

TEST(ProfilerTest, MergesLogsFromExitedThreads) {
  Profiler prof(/*enabled=*/true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&prof] {
      for (int i = 0; i < 100; ++i) prof.record(Stage::kSim, 0.01);
    });
  }
  for (auto& t : threads) t.join();
  const StageProfile profile = prof.snapshot();
  EXPECT_EQ(profile.totals[static_cast<std::size_t>(Stage::kSim)].spans, 400u);
  EXPECT_NEAR(profile.seconds(Stage::kSim), 4.0, 1e-9);
}

TEST(SpanTest, MeasuresElapsedWallTime) {
  Profiler prof(/*enabled=*/true);
  Span span(Stage::kSim, prof);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = span.stop();
  EXPECT_GE(first, 0.015);
  // stop() is idempotent: a second call records nothing and returns 0.
  EXPECT_DOUBLE_EQ(span.stop(), 0.0);
  const StageProfile profile = prof.snapshot();
  EXPECT_EQ(profile.totals[static_cast<std::size_t>(Stage::kSim)].spans, 1u);
  EXPECT_NEAR(profile.seconds(Stage::kSim), first, 1e-8);
  ASSERT_EQ(profile.recent.size(), 1u);
  EXPECT_EQ(profile.recent[0].stage, Stage::kSim);
}

TEST(SpanTest, CellSpanLandsInCellBreakdown) {
  Profiler prof(/*enabled=*/true);
  {
    Span span(Stage::kCache, "gcc@65-1.0", prof);
  }
  const StageProfile profile = prof.snapshot();
  ASSERT_EQ(profile.cells.count("gcc@65-1.0"), 1u);
  EXPECT_EQ(
      profile.cells.at("gcc@65-1.0")[static_cast<std::size_t>(Stage::kCache)].spans,
      1u);
}

// Acceptance: per-stage wall times from an instrumented evaluator run sum to
// within 10% of the evaluator's own recorded total.
TEST(ProfileEndToEndTest, StageSumMatchesEvaluatorWallTime) {
  Profiler& prof = Profiler::global();
  if (!prof.enabled()) GTEST_SKIP() << "RAMP_METRICS=off in this environment";
  prof.reset();

  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 20'000;
  const pipeline::Evaluator evaluator(cfg);
  const auto& gcc = workloads::workload("gcc");
  evaluator.evaluate(gcc, scaling::TechPoint::k90nm);

  const StageProfile profile = prof.snapshot();
  const double total = profile.seconds(Stage::kTotal);
  ASSERT_GT(total, 0.0);
  const double stage_sum =
      profile.seconds(Stage::kTraceGen) + profile.seconds(Stage::kSim) +
      profile.seconds(Stage::kPower) + profile.seconds(Stage::kThermal) +
      profile.seconds(Stage::kFit) + profile.seconds(Stage::kCache);
  EXPECT_NEAR(stage_sum, total, 0.10 * total);

  // The run is attributed to its app@node cell.
  ASSERT_EQ(profile.cells.count("gcc@90"), 1u);
  const auto& cell = profile.cells.at("gcc@90");
  EXPECT_GT(cell[static_cast<std::size_t>(Stage::kSim)].seconds, 0.0);
  EXPECT_GT(cell[static_cast<std::size_t>(Stage::kTotal)].seconds, 0.0);
  prof.reset();
}

}  // namespace
}  // namespace ramp::obs
