// ramp_loadgen — open- and closed-loop NDJSON/TCP load generator for
// `ramp serve --listen`.
//
//   ramp_loadgen --port P [--host H] [--port-file FILE]
//                [--mode closed|open] [--connections N] [--rate RPS]
//                [--duration S] [--requests N] [--hot-frac F]
//                [--trace-len N] [--apps a,b,c] [--nodes n1,n2] [--seed N]
//
// Closed loop (default): each of N connections keeps exactly one request in
// flight — send, await, repeat — so offered load self-limits to service
// capacity; this measures latency at a concurrency level. Open loop:
// requests are sent on schedule at --rate requests/second spread over the
// connections regardless of completions — this is the honest way to find
// the saturation knee, because a slow server does not slow the offered
// load down (coordinated omission).
//
// Key skew: --hot-frac F sends fraction F of requests to ONE hot key (the
// first app x node) and the rest uniformly over the app x node pool.
// Hot-key traffic exercises the server's cross-client single-flight and
// cache path; uniform traffic exercises scheduling and sharding spread.
//
// Output: one JSON summary on stdout —
//   {"mode":...,"connections":N,"offered_rps":...,"sent":...,
//    "completed":...,"ok":...,"errors":...,"overloaded":...,
//    "duration_s":...,"achieved_rps":...,"p50_ms":...,"p99_ms":...}
// Latency percentiles are over completed requests, send-to-response.
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace {

using namespace ramp;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::string mode = "closed";
  std::size_t connections = 8;
  double rate = 200.0;       ///< open loop: total requests/second
  double duration_s = 5.0;
  std::uint64_t requests = 0;  ///< closed loop: per-conn cap (0 = by time)
  double hot_frac = 0.5;
  std::uint64_t trace_len = 20'000;
  std::vector<std::string> apps = {"gcc", "gzip", "twolf", "crafty"};
  std::vector<std::string> nodes = {"180", "130", "90", "65-1.0"};
  std::uint64_t seed = 42;
  bool trace = false;  ///< ask the server for a per-request phase breakdown
};

struct ThreadStats {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::vector<double> latencies_ms;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string make_request(const Config& cfg, std::mt19937_64& rng,
                         std::uint64_t id) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::size_t ai = 0, ni = 0;
  if (coin(rng) >= cfg.hot_frac) {
    ai = rng() % cfg.apps.size();
    ni = rng() % cfg.nodes.size();
  }
  return "{\"op\":\"eval\",\"app\":\"" + cfg.apps[ai] + "\",\"node\":\"" +
         cfg.nodes[ni] + "\",\"trace_len\":" + std::to_string(cfg.trace_len) +
         ",\"id\":" + std::to_string(id) +
         (cfg.trace ? ",\"trace\":true" : "") + "}\n";
}

/// Reads whatever is available without blocking; returns false on EOF or
/// error. Complete lines land in `lines`.
bool drain_readable(int fd, std::string& inbuf,
                    std::vector<std::string>& lines) {
  while (true) {
    char buf[65536];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      inbuf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(inbuf.substr(start, nl - start));
    start = nl + 1;
  }
  inbuf.erase(0, start);
  return true;
}

void record_response(const std::string& line,
                     std::unordered_map<std::uint64_t, Clock::time_point>&
                         outstanding,
                     ThreadStats& st) {
  st.completed++;
  try {
    const serve::Json j = serve::Json::parse(line);
    if (const serve::Json* id = j.find("id")) {
      const auto key = static_cast<std::uint64_t>(id->as_number("id"));
      const auto it = outstanding.find(key);
      if (it != outstanding.end()) {
        st.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      it->second)
                .count());
        outstanding.erase(it);
      }
    }
    const serve::Json* ok = j.find("ok");
    if (ok != nullptr && ok->as_bool("ok")) {
      st.ok++;
    } else if (j.find("overloaded") != nullptr) {
      st.overloaded++;
    } else {
      st.errors++;
    }
  } catch (const std::exception&) {
    st.errors++;
  }
}

/// One connection's worth of load. Closed loop: lock-step request/response.
/// Open loop: sends on its schedule (total rate / connections), reads
/// whenever responses are ready, never waits for them to send.
ThreadStats run_connection(const Config& cfg, std::size_t index) {
  ThreadStats st;
  std::mt19937_64 rng(cfg.seed * 1000003 + index);
  net::OwnedFd fd = net::connect_tcp(cfg.host, cfg.port);
  net::set_nonblocking(fd.get());

  std::string inbuf;
  std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.duration_s));
  const bool open_loop = cfg.mode == "open";
  const double interval_s =
      open_loop ? static_cast<double>(cfg.connections) / cfg.rate : 0.0;
  auto next_send = start;
  std::uint64_t seq = index * 1'000'000'000ULL;  // ids unique per connection
  std::string pending_write;

  const auto send_one = [&] {
    const std::string req = make_request(cfg, rng, seq);
    outstanding.emplace(seq, Clock::now());
    ++seq;
    st.sent++;
    pending_write += req;
  };
  const auto flush_writes = [&]() -> bool {
    while (!pending_write.empty()) {
      const ssize_t n =
          ::write(fd.get(), pending_write.data(), pending_write.size());
      if (n > 0) {
        pending_write.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // server went away (e.g. drained)
    }
    return true;
  };

  bool alive = true;
  while (alive) {
    const auto now = Clock::now();
    const bool time_up = now >= deadline;
    const bool count_up = cfg.requests != 0 && st.sent >= cfg.requests;
    const bool sending_done = time_up || count_up;
    if (sending_done && outstanding.empty() && pending_write.empty()) break;

    if (!sending_done) {
      if (open_loop) {
        while (next_send <= Clock::now()) {
          send_one();
          next_send += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(interval_s));
        }
      } else if (outstanding.empty() && pending_write.empty()) {
        send_one();  // closed loop: exactly one in flight
      }
    }
    if (!flush_writes()) break;

    struct pollfd pfd{};
    pfd.fd = fd.get();
    pfd.events = static_cast<short>(POLLIN |
                                    (pending_write.empty() ? 0 : POLLOUT));
    int timeout_ms = 50;
    if (open_loop && !sending_done) {
      const double until =
          std::chrono::duration<double, std::milli>(next_send - Clock::now())
              .count();
      timeout_ms = std::max(0, std::min(50, static_cast<int>(until)));
    }
    if (sending_done) timeout_ms = 200;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0 && errno != EINTR) break;
    if (pr > 0 && (pfd.revents & (POLLIN | POLLHUP))) {
      std::vector<std::string> lines;
      alive = drain_readable(fd.get(), inbuf, lines);
      for (const std::string& line : lines)
        record_response(line, outstanding, st);
    }
    // Give a drained/overloaded server 5s of grace after sending stops,
    // then count the remainder as lost.
    if (sending_done &&
        Clock::now() > deadline + std::chrono::seconds(5)) {
      break;
    }
  }
  return st;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ramp_loadgen --port P [--host H] [--port-file FILE]\n"
      "                    [--mode closed|open] [--connections N]\n"
      "                    [--rate RPS] [--duration S] [--requests N]\n"
      "                    [--hot-frac F] [--trace-len N]\n"
      "                    [--apps a,b,c] [--nodes n1,n2] [--seed N]\n"
      "                    [--trace]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto take = [&](const char* flag) -> std::optional<std::string> {
    for (auto it = args.begin(); it != args.end(); ++it) {
      if (*it == flag && std::next(it) != args.end()) {
        std::string v = *std::next(it);
        args.erase(it, it + 2);
        return v;
      }
    }
    return std::nullopt;
  };
  try {
    if (const auto v = take("--host")) cfg.host = *v;
    if (const auto v = take("--port"))
      cfg.port = static_cast<std::uint16_t>(std::stoul(*v));
    if (const auto v = take("--port-file")) cfg.port_file = *v;
    if (const auto v = take("--mode")) cfg.mode = *v;
    if (const auto v = take("--connections"))
      cfg.connections = std::stoul(*v);
    if (const auto v = take("--rate")) cfg.rate = std::stod(*v);
    if (const auto v = take("--duration")) cfg.duration_s = std::stod(*v);
    if (const auto v = take("--requests")) cfg.requests = std::stoull(*v);
    if (const auto v = take("--hot-frac")) cfg.hot_frac = std::stod(*v);
    if (const auto v = take("--trace-len")) cfg.trace_len = std::stoull(*v);
    if (const auto v = take("--apps")) cfg.apps = split_csv(*v);
    if (const auto v = take("--nodes")) cfg.nodes = split_csv(*v);
    if (const auto v = take("--seed")) cfg.seed = std::stoull(*v);
    // Bare flag: every request opts into its own server-side breakdown.
    for (auto it = args.begin(); it != args.end(); ++it) {
      if (*it == "--trace") {
        cfg.trace = true;
        args.erase(it);
        break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ramp_loadgen: bad flag value: %s\n", e.what());
    return 2;
  }
  if (!args.empty()) {
    std::fprintf(stderr, "ramp_loadgen: unknown argument '%s'\n",
                 args.front().c_str());
    return usage();
  }
  RAMP_REQUIRE(cfg.mode == "open" || cfg.mode == "closed",
               "--mode must be open or closed");
  RAMP_REQUIRE(cfg.connections >= 1, "--connections must be at least 1");
  RAMP_REQUIRE(cfg.hot_frac >= 0.0 && cfg.hot_frac <= 1.0,
               "--hot-frac must be in [0,1]");
  RAMP_REQUIRE(!cfg.apps.empty() && !cfg.nodes.empty(),
               "--apps/--nodes must be non-empty");

  if (!cfg.port_file.empty()) {
    // Wait (up to ~10s) for the server to report its bound port.
    for (int i = 0; i < 1000 && cfg.port == 0; ++i) {
      std::ifstream in(cfg.port_file);
      unsigned p = 0;
      if (in >> p && p > 0 && p <= 65535) {
        cfg.port = static_cast<std::uint16_t>(p);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (cfg.port == 0) {
    std::fprintf(stderr, "ramp_loadgen: no --port (or --port-file never "
                         "appeared)\n");
    return 2;
  }

  serve::ignore_sigpipe();  // a draining server closing on us is expected

  std::vector<std::thread> threads;
  std::vector<ThreadStats> stats(cfg.connections);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < cfg.connections; ++i) {
    threads.emplace_back([&cfg, &stats, i] {
      try {
        stats[i] = run_connection(cfg, i);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ramp_loadgen: connection %zu: %s\n", i,
                     e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ThreadStats total;
  for (const ThreadStats& s : stats) {
    total.sent += s.sent;
    total.completed += s.completed;
    total.ok += s.ok;
    total.errors += s.errors;
    total.overloaded += s.overloaded;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              s.latencies_ms.begin(), s.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const auto pct = [&](double q) {
    if (total.latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(total.latencies_ms.size() - 1));
    return total.latencies_ms[idx];
  };

  serve::Json out = serve::Json::object();
  out.set("mode", cfg.mode)
      .set("connections", static_cast<std::uint64_t>(cfg.connections))
      .set("offered_rps", cfg.mode == "open"
                              ? cfg.rate
                              : static_cast<double>(total.sent) / wall_s)
      .set("sent", total.sent)
      .set("completed", total.completed)
      .set("ok", total.ok)
      .set("errors", total.errors)
      .set("overloaded", total.overloaded)
      .set("duration_s", wall_s)
      .set("achieved_rps", static_cast<double>(total.completed) / wall_s)
      .set("p50_ms", pct(0.50))
      .set("p99_ms", pct(0.99));
  std::printf("%s\n", out.dump().c_str());
  return total.completed == total.sent ? 0 : 1;
}
