// ramp — command-line front end to the library.
//
// Subcommands:
//   ramp list                         list workloads and technology nodes
//   ramp evaluate <app> <node> [...]  run one (workload, node) cell
//   ramp sweep [--trace-len N] [--jobs N]    full 16-app x 5-node sweep
//   ramp report [--trace-len N] [--jobs N]   markdown report of a sweep
//   ramp serve [--jobs N] [...]       NDJSON evaluation service on stdin/stdout
//   ramp fleet [--chips N] [...]      fleet-scale population scenario
//   ramp simcheck [...]               fast-sim vs detailed differential check
//   ramp trace <app> <file> [N]       capture a synthetic trace to a file
//
// Node names accept "180", "130", "90", "65-0.9", "65-1.0".
#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/qualification.hpp"
#include "fleet/fleet_simulator.hpp"
#include "fleet/scenario.hpp"
#include "net/server.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "pipeline/mission.hpp"
#include "pipeline/stage_graph.hpp"
#include "pipeline/sweep.hpp"
#include "serve/eval_service.hpp"
#include "serve/server.hpp"
#include "sim/core_config.hpp"
#include "sim/interval_model.hpp"
#include "sim/ooo_core.hpp"
#include "sim/sampled_core.hpp"
#include "sim/sim_mode.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/constants.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ramp;

scaling::TechPoint parse_node(const std::string& name) {
  return scaling::parse_tech(name);
}

std::uint64_t flag_u64(std::vector<std::string>& args, const std::string& flag,
                       std::uint64_t fallback) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag && std::next(it) != args.end()) {
      const std::uint64_t v = parse_u64(*std::next(it), "flag " + flag);
      args.erase(it, it + 2);
      return v;
    }
  }
  return fallback;
}

std::string flag_str(std::vector<std::string>& args, const std::string& flag,
                     std::string fallback) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag && std::next(it) != args.end()) {
      std::string v = *std::next(it);
      args.erase(it, it + 2);
      return v;
    }
  }
  return fallback;
}

double flag_double(std::vector<std::string>& args, const std::string& flag,
                   double fallback) {
  const std::string s = flag_str(args, flag, "");
  if (s.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  RAMP_REQUIRE(end != nullptr && *end == '\0' && end != s.c_str() &&
                   std::isfinite(v),
               "flag " + flag + " expects a finite number, got '" + s + "'");
  return v;
}

// --sim-mode detailed|sampled|interval|auto (strict parse; throws on junk).
void flag_sim_mode(std::vector<std::string>& args,
                   pipeline::EvaluationConfig& cfg) {
  if (const std::string m = flag_str(args, "--sim-mode", ""); !m.empty()) {
    cfg.sim_mode = sim::parse_sim_mode(m);
  }
}

bool flag_present(std::vector<std::string>& args, const std::string& flag) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return false;
  args.erase(it);
  return true;
}

// --NAME / --NAME=VALUE: nullopt when absent; "" for the bare form (use the
// default destination). Shared by --metrics and --timeline.
std::optional<std::string> flag_opt_value(std::vector<std::string>& args,
                                          const std::string& flag) {
  const std::string eq = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return std::string();
    }
    if (it->rfind(eq, 0) == 0) {
      std::string value = it->substr(eq.size());
      args.erase(it);
      return value;
    }
  }
  return std::nullopt;
}

std::optional<std::string> flag_metrics(std::vector<std::string>& args) {
  return flag_opt_value(args, "--metrics");
}

// --trace-out FILE / --trace-out=FILE; "" when absent.
std::string flag_trace_out(std::vector<std::string>& args) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind("--trace-out=", 0) == 0) {
      std::string path = it->substr(std::strlen("--trace-out="));
      args.erase(it);
      return path;
    }
  }
  return flag_str(args, "--trace-out", "");
}

// Dump-on-exit for the sweep-based subcommands: one snapshot of the global
// registry + stage profile, written to `request` (the --metrics value),
// falling back to RAMP_METRICS_PATH and then stderr. Prometheus text unless
// the destination ends in ".json" (see obs::write_metrics_file).
void dump_metrics(const std::optional<std::string>& request) {
  if (!request) return;
  const std::string path =
      !request->empty() ? *request
                        : env_string("RAMP_METRICS_PATH").value_or("");
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::StageProfile profile = obs::Profiler::global().snapshot();
  if (path.empty()) {
    std::fputs(obs::to_prometheus(snap, &profile).c_str(), stderr);
  } else {
    obs::write_metrics_file(path, snap, &profile);
    std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  }
}

// --stage-cache[=DIR] with the RAMP_STAGE_CACHE fallback (already resolved
// into `cfg` by from_env): returns the per-stage memoization store for this
// invocation, or null when stage caching is off. The bare flag (and
// RAMP_STAGE_CACHE=on) persists under <out_dir>/stage_cache, like the
// other artifact defaults; an explicit DIR wins.
std::shared_ptr<pipeline::StageStore> resolve_stage_store(
    std::vector<std::string>& args, pipeline::EvaluationConfig& cfg,
    const std::string& out_dir) {
  if (const auto flag = flag_opt_value(args, "--stage-cache")) {
    cfg.stage_cache_enabled = true;
    cfg.stage_cache_dir = *flag;
  }
  if (!cfg.stage_cache_enabled) return nullptr;
  if (cfg.stage_cache_dir.empty()) {
    cfg.stage_cache_dir =
        (std::filesystem::path(out_dir) / "stage_cache").string();
  }
  pipeline::StageStore::Options opts;
  opts.dir = cfg.stage_cache_dir;
  return std::make_shared<pipeline::StageStore>(std::move(opts));
}

// One pool for the whole process, sized on first use, so the sweep/report/
// missions subcommands (and any future multi-sweep command) share workers
// instead of spinning up a pool per sweep.
ThreadPool& shared_pool(std::size_t jobs) {
  static std::unique_ptr<ThreadPool> pool;
  if (!pool) pool = std::make_unique<ThreadPool>(jobs);
  return *pool;
}

// The flight-recorder/metrics switches of one sweep-based invocation, as
// resolved from flags with environment fallbacks (RAMP_METRICS_PATH,
// RAMP_TIMELINE, RAMP_TRACE_OUT).
struct ObsFlags {
  std::optional<std::string> metrics;   ///< --metrics[=FILE]
  std::optional<std::string> timeline;  ///< --timeline[=DIR]; "" = default dir
  std::string trace_out;                ///< --trace-out FILE; "" = disabled
  std::string out_dir;
};

// Shared front half of the sweep-based subcommands: environment config with
// --trace-len / --jobs / --out-dir overrides, stderr progress, pooled
// execution. RAMP_JOBS sets the default worker count, like the benches.
pipeline::SweepResult cli_sweep(std::vector<std::string>& args, ObsFlags& fl) {
  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/200'000);
  cfg.trace_instructions = flag_u64(args, "--trace-len", cfg.trace_instructions);
  flag_sim_mode(args, cfg);
  const std::size_t default_jobs =
      env_jobs("RAMP_JOBS", std::max(1u, std::thread::hardware_concurrency()));
  const auto jobs =
      static_cast<std::size_t>(flag_u64(args, "--jobs", default_jobs));
  RAMP_REQUIRE(jobs > 0, "--jobs must be at least 1");

  fl.metrics = flag_metrics(args);
  fl.timeline = flag_opt_value(args, "--timeline");
  fl.trace_out = flag_trace_out(args);
  fl.out_dir = flag_str(args, "--out-dir", output_dir());
  // Environment fallbacks: RAMP_TIMELINE[=DIR] / RAMP_TRACE_OUT behave like
  // the flags when those are absent.
  if (!fl.timeline && cfg.timeline_enabled) fl.timeline = cfg.timeline_dir;
  cfg.timeline_enabled = fl.timeline.has_value();
  if (fl.trace_out.empty()) fl.trace_out = cfg.trace_out;
  if (!fl.trace_out.empty()) obs::Profiler::global().enable_trace();

  static pipeline::StderrProgress progress;
  pipeline::SweepRunner::Options opts;
  opts.cache_path =
      (std::filesystem::path(fl.out_dir) / "ramp_sweep_cache.csv").string();
  opts.observer = &progress;
  opts.pool = &shared_pool(jobs);
  opts.stage_store = resolve_stage_store(args, cfg, fl.out_dir);
  return pipeline::SweepRunner(cfg, opts).run();
}

// Dump-on-exit back half: metrics snapshot, per-cell timeline CSV/NDJSON +
// incident log, and the Chrome trace file.
void dump_obs(const ObsFlags& fl, const pipeline::SweepResult& sweep) {
  dump_metrics(fl.metrics);

  if (fl.timeline) {
    namespace fs = std::filesystem;
    const std::string dir =
        fl.timeline->empty() ? (fs::path(fl.out_dir) / "timeline").string()
                             : *fl.timeline;
    std::size_t cells = 0;
    std::size_t incidents = 0;
    std::string incident_body;
    for (const auto& r : sweep.results) {
      if (r.timeline.empty()) continue;
      ++cells;
      const std::string stem =
          (fs::path(dir) / obs::timeline_file_stem(r.timeline.cell)).string();
      obs::write_text_file_atomic(stem + ".csv",
                                  obs::timeline_to_csv(r.timeline));
      obs::write_text_file_atomic(stem + ".ndjson",
                                  obs::timeline_to_ndjson(r.timeline));
      for (const auto& inc : r.incidents) {
        ++incidents;
        incident_body += obs::incident_to_json(inc);
        incident_body += '\n';
      }
    }
    // Always published (possibly empty): consumers can watch one file.
    obs::write_text_file_atomic(
        (fs::path(dir) / "incidents.ndjson").string(), incident_body);
    std::fprintf(stderr,
                 "timelines for %zu cell(s), %zu incident(s), written to %s\n",
                 cells, incidents, dir.c_str());
  }

  if (!fl.trace_out.empty()) {
    if (!obs::Profiler::global().enabled()) {
      std::fprintf(stderr,
                   "--trace-out ignored: RAMP_METRICS=off disables the "
                   "profiler\n");
    } else {
      obs::write_trace_file(fl.trace_out,
                            obs::Profiler::global().trace_snapshot());
      std::fprintf(stderr, "trace written to %s\n", fl.trace_out.c_str());
    }
  }
}

int cmd_list() {
  TextTable apps("Workloads (SPEC2K, Table 3)");
  apps.set_header({"name", "suite", "IPC (paper)", "power W (paper)"});
  for (const auto& w : workloads::spec2k_suite()) {
    apps.add_row({w.name, workloads::suite_name(w.suite), fmt(w.table3_ipc, 2),
                  fmt(w.table3_power_w, 2)});
  }
  std::printf("%s\n", apps.str().c_str());

  TextTable nodes("Technology nodes (Table 4)");
  nodes.set_header({"name", "Vdd", "GHz", "tox A", "rel area"});
  for (const auto& n : scaling::standard_nodes()) {
    nodes.add_row({n.name, fmt(n.vdd, 1), fmt(n.frequency_hz / 1e9, 2),
                   fmt(n.tox_nm * 10, 0), fmt(n.relative_area, 2)});
  }
  std::printf("%s", nodes.str().c_str());
  return 0;
}

int cmd_evaluate(std::vector<std::string> args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: ramp evaluate <app> <node> [--trace-len N]\n");
    return 2;
  }
  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/200'000);
  cfg.trace_instructions = flag_u64(args, "--trace-len", cfg.trace_instructions);
  flag_sim_mode(args, cfg);
  const std::string out_dir = flag_str(args, "--out-dir", output_dir());
  const auto stage_store = resolve_stage_store(args, cfg, out_dir);
  const auto& w = workloads::workload(args[0]);
  const auto node = parse_node(args[1]);

  const pipeline::Evaluator ev(cfg, stage_store);
  const auto base = ev.evaluate(w, scaling::TechPoint::k180nm);
  const auto r = node == scaling::TechPoint::k180nm
                     ? base
                     : ev.evaluate(w, node, base.sink_temp_k);
  const auto k = core::qualify({base.raw_fits});
  const auto fits = pipeline::scale_summary(r.raw_fits, k);

  std::printf("%s @ %s\n", w.name.c_str(),
              std::string(scaling::tech_name(node)).c_str());
  std::printf("  IPC               %.2f\n", r.ipc);
  std::printf("  power             %.1f W (dyn %.1f + leak %.1f)\n",
              r.avg_total_power_w, r.avg_dynamic_power_w,
              r.avg_leakage_power_w);
  std::printf("  hottest structure %.1f K (sink %.1f K)\n",
              r.max_structure_temp_k, r.sink_temp_k);
  const auto mech = fits.by_mechanism();
  std::printf("  FIT               EM %.0f, SM %.0f, TDDB %.0f, TC %.0f\n",
              mech[0], mech[1], mech[2], mech[3]);
  std::printf("  total             %.0f FIT  (MTTF %.1f years)\n",
              fits.total(), fits.mttf_years());
  return 0;
}

int cmd_sweep(std::vector<std::string> args, bool markdown) {
  ObsFlags fl;
  const auto sweep = cli_sweep(args, fl);

  if (!markdown) {
    TextTable table("Qualified total FIT (sweep)");
    std::vector<std::string> header = {"app"};
    for (const auto tp : scaling::kAllTechPoints) {
      header.push_back(std::string(scaling::tech_name(tp)));
    }
    table.set_header(header);
    for (const auto& w : workloads::spec2k_suite()) {
      std::vector<std::string> row = {w.name};
      for (const auto tp : scaling::kAllTechPoints) {
        row.push_back(fmt(sweep.qualified_fits(sweep.at(w.name, tp)).total(), 0));
      }
      table.add_row(row);
    }
    std::printf("%s", table.str().c_str());
    dump_obs(fl, sweep);
    return 0;
  }

  // Markdown report.
  std::printf("# RAMP scaling report\n\n");
  std::printf("Qualification: 180 nm suite average = 4000 FIT (30-year MTTF).\n\n");
  std::printf("| node | avg FIT | vs 180nm | avg MTTF (y) | hottest app |\n");
  std::printf("|---|---|---|---|---|\n");
  const double base = sweep.average_total_fit_all(scaling::TechPoint::k180nm);
  for (const auto tp : scaling::kAllTechPoints) {
    const double avg = sweep.average_total_fit_all(tp);
    std::string hottest;
    double max_t = 0;
    for (const auto& r : sweep.results) {
      if (r.tech == tp && r.max_structure_temp_k > max_t) {
        max_t = r.max_structure_temp_k;
        hottest = r.app;
      }
    }
    std::printf("| %s | %.0f | %s | %.1f | %s (%.1f K) |\n",
                std::string(scaling::tech_name(tp)).c_str(), avg,
                fmt_pct_change(avg / base).c_str(), mttf_years_from_fit(avg),
                hottest.c_str(), max_t);
  }
  std::printf("\n## Mechanism breakdown (suite average)\n\n");
  std::printf("| node | EM | SM | TDDB | TC |\n|---|---|---|---|---|\n");
  for (const auto tp : scaling::kAllTechPoints) {
    std::printf("| %s |", std::string(scaling::tech_name(tp)).c_str());
    for (int m = 0; m < core::kNumMechanisms; ++m) {
      const double fp = sweep.average_mechanism_fit(
          workloads::Suite::kSpecFp, tp, static_cast<core::Mechanism>(m));
      const double in = sweep.average_mechanism_fit(
          workloads::Suite::kSpecInt, tp, static_cast<core::Mechanism>(m));
      std::printf(" %.0f |", (fp + in) / 2.0);
    }
    std::printf("\n");
  }
  dump_obs(fl, sweep);
  return 0;
}

int cmd_missions(std::vector<std::string> args) {
  ObsFlags fl;
  const auto sweep = cli_sweep(args, fl);
  TextTable table("Example deployment missions, MTTF (years) per node");
  std::vector<std::string> header = {"mission"};
  for (const auto tp : scaling::kAllTechPoints) {
    header.push_back(std::string(scaling::tech_name(tp)));
  }
  table.set_header(header);
  for (const auto& mission : pipeline::example_missions()) {
    std::vector<std::string> row = {mission.name};
    for (const auto tp : scaling::kAllTechPoints) {
      row.push_back(
          fmt(pipeline::evaluate_mission(sweep, tp, mission).mttf_years(), 1));
    }
    table.add_row(row);
  }
  std::printf("%s", table.str().c_str());
  dump_obs(fl, sweep);
  return 0;
}

// `--listen ADDR:PORT` for the TCP mode ("ADDR:0" binds an ephemeral
// port); PORT alone means 127.0.0.1:PORT.
void parse_listen(const std::string& listen, std::string* host,
                  std::uint16_t* port) {
  const std::size_t colon = listen.rfind(':');
  std::string port_str = listen;
  if (colon != std::string::npos) {
    *host = listen.substr(0, colon);
    port_str = listen.substr(colon + 1);
  }
  const std::uint64_t p = parse_u64(port_str, "--listen port");
  RAMP_REQUIRE(p <= 65535, "--listen port out of range");
  *port = static_cast<std::uint16_t>(p);
}

// The bound port, written atomically so a launcher polling for the file
// never reads a partial line.
void write_port_file(const std::string& path, std::uint16_t port) {
  if (path.empty()) return;
  obs::write_text_file_atomic(path, std::to_string(port) + "\n");
}

// NDJSON evaluation service: one request per line, one response per line
// (`eval`, `timeline`, `fleet`, `stats`, `metrics`, `metrics_reset`,
// `health`, `trace_dump`, `shutdown`). Default transport is stdin/stdout;
// `--listen ADDR:PORT`
// serves many concurrent TCP clients from one epoll loop, and `--shards N`
// additionally forks N workers that each own a disjoint slice of the cache
// keyspace (consistent hash on the canonical request key) behind a proxying
// front. External drivers (sweeps, DRM loops, RPC shims, loadgens) stream
// queries against warm processes instead of paying pipeline startup per FIT
// estimate.
int cmd_serve(std::vector<std::string> args) {
  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/200'000);
  cfg.trace_instructions = flag_u64(args, "--trace-len", cfg.trace_instructions);
  flag_sim_mode(args, cfg);
  const std::size_t default_jobs =
      env_jobs("RAMP_JOBS", std::max(1u, std::thread::hardware_concurrency()));

  const auto jobs =
      static_cast<std::size_t>(flag_u64(args, "--jobs", default_jobs));
  const auto cache_capacity =
      static_cast<std::size_t>(flag_u64(args, "--cache-capacity", 512));
  const auto max_pending =
      static_cast<std::size_t>(flag_u64(args, "--max-queue", 128));
  const std::string out_dir = flag_str(args, "--out-dir", output_dir());
  const bool no_persist = flag_present(args, "--no-persist");
  const std::string listen = flag_str(args, "--listen", "");
  const auto shards = static_cast<std::size_t>(flag_u64(args, "--shards", 1));
  const std::string port_file = flag_str(args, "--port-file", "");
  const auto max_conns =
      static_cast<std::size_t>(flag_u64(args, "--max-conns", 256));
  const auto max_queued =
      static_cast<std::size_t>(flag_u64(args, "--max-queued", 1024));
  const std::optional<std::string> stage_flag =
      flag_opt_value(args, "--stage-cache");
  const bool request_trace = flag_present(args, "--request-trace");
  const std::optional<std::string> slow_log_flag =
      flag_opt_value(args, "--slow-log");
  const double slow_ms = flag_double(args, "--slow-ms", 10.0);
  std::string trace_out = flag_trace_out(args);
  if (trace_out.empty()) trace_out = cfg.trace_out;
  if (!trace_out.empty()) obs::Profiler::global().enable_trace();
  if (!args.empty()) {
    std::fprintf(stderr, "serve: unknown argument '%s'\n", args.front().c_str());
    return 2;
  }
  RAMP_REQUIRE(shards >= 1, "--shards must be at least 1");
  RAMP_REQUIRE(shards == 1 || !listen.empty(),
               "--shards needs --listen (sharding is a TCP-mode feature)");
  RAMP_REQUIRE(slow_ms >= 0.0, "--slow-ms must be non-negative");
  RAMP_REQUIRE(!slow_log_flag || !listen.empty(),
               "--slow-log needs --listen (the slow-request log is a "
               "TCP-mode feature)");

  // --slow-log[=FILE]: bare form lands next to the other serve artifacts.
  std::string slow_log_path;
  if (slow_log_flag) {
    slow_log_path =
        slow_log_flag->empty()
            ? (std::filesystem::path(out_dir) / "serve_slow.ndjson").string()
            : *slow_log_flag;
  }
  // Shard workers write disjoint slow logs (foo-shard2.ndjson): N processes
  // appending to one file would interleave lines.
  const auto shard_slow_log = [&](std::size_t shard) {
    if (slow_log_path.empty()) return std::string();
    const std::filesystem::path p(slow_log_path);
    return (p.parent_path() / (p.stem().string() + "-shard" +
                               std::to_string(shard) + p.extension().string()))
        .string();
  };

  // A client dying mid-stream must be a clean shutdown, not a SIGPIPE
  // kill; SIGINT/SIGTERM request a graceful drain (answer everything
  // accepted, flush, exit 0).
  serve::ignore_sigpipe();
  volatile std::sig_atomic_t* drain = serve::install_drain_handlers();

  // Builds one service's options; `suffix` keeps shard workers' persistent
  // and stage caches disjoint (each shard owns its keyspace slice).
  const auto make_service_opts = [&](const std::string& suffix,
                                     pipeline::EvaluationConfig& c) {
    serve::EvalService::Options o;
    o.jobs = jobs;
    o.cache_capacity = cache_capacity;
    o.max_pending = max_pending;
    if (!no_persist && c.cache_enabled) {
      o.persist_dir =
          (std::filesystem::path(out_dir) / ("serve_cache" + suffix))
              .string();
    }
    if (stage_flag) {
      c.stage_cache_enabled = true;
      c.stage_cache_dir = *stage_flag;
    }
    if (c.stage_cache_enabled) {
      if (c.stage_cache_dir.empty()) {
        c.stage_cache_dir =
            (std::filesystem::path(out_dir) / ("stage_cache" + suffix))
                .string();
      } else if (!suffix.empty()) {
        c.stage_cache_dir += suffix;
      }
      pipeline::StageStore::Options so;
      so.dir = c.stage_cache_dir;
      o.stage_store = std::make_shared<pipeline::StageStore>(std::move(so));
    }
    return o;
  };

  int rc = 0;
  if (listen.empty()) {
    // stdio mode.
    serve::EvalService::Options opts = make_service_opts("", cfg);
    serve::EvalService service(cfg, opts);
    std::fprintf(stderr,
                 "ramp serve: %zu worker(s), cache %zu entries, persist %s\n",
                 opts.jobs, opts.cache_capacity,
                 opts.persist_dir.empty() ? "off" : opts.persist_dir.c_str());
    serve::StdioOptions sopts;
    sopts.drain_flag = drain;
    sopts.request_trace = request_trace;
    rc = serve::serve_stdio(service, sopts);
  } else if (shards == 1) {
    // Single-process TCP mode.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    parse_listen(listen, &host, &port);
    serve::EvalService::Options opts = make_service_opts("", cfg);
    serve::EvalService service(cfg, opts);
    net::ServerOptions sopts;
    sopts.host = host;
    sopts.port = port;
    sopts.max_connections = max_conns;
    sopts.max_queued_requests = max_queued;
    sopts.drain_flag = drain;
    sopts.request_trace = request_trace;
    sopts.slow_log_path = slow_log_path;
    sopts.slow_ms = slow_ms;
    net::Server server(service, sopts);
    write_port_file(port_file, server.port());
    std::fprintf(stderr,
                 "ramp serve: listening on %s:%u, %zu worker(s), cache %zu "
                 "entries, persist %s\n",
                 host.c_str(), server.port(), opts.jobs, opts.cache_capacity,
                 opts.persist_dir.empty() ? "off" : opts.persist_dir.c_str());
    rc = server.run();
  } else {
    // Sharded TCP mode: the parent proxies, the forked workers serve.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    parse_listen(listen, &host, &port);
    net::ShardFrontOptions fopts;
    fopts.host = host;
    fopts.port = port;
    fopts.shards = shards;
    fopts.max_connections = max_conns;
    fopts.base_config = cfg;
    fopts.drain_flag = drain;
    fopts.on_listening = [&](std::uint16_t bound) {
      write_port_file(port_file, bound);
      std::fprintf(stderr,
                   "ramp serve: front on %s:%u, %zu shard worker(s)\n",
                   host.c_str(), bound, shards);
    };
    rc = net::run_sharded_front(
        fopts, [&](std::size_t shard, net::OwnedFd listener) {
          pipeline::EvaluationConfig ccfg = cfg;
          serve::EvalService::Options copts = make_service_opts(
              "/shard-" + std::to_string(shard), ccfg);
          serve::EvalService service(ccfg, copts);
          net::ServerOptions sopts;
          sopts.listen_fd = listener.release();
          sopts.max_connections = max_conns;
          sopts.max_queued_requests = max_queued;
          sopts.drain_flag = serve::install_drain_handlers();
          sopts.request_trace = request_trace;
          sopts.slow_log_path = shard_slow_log(shard);
          sopts.slow_ms = slow_ms;
          sopts.shards = shards;
          net::Server server(service, sopts);
          return server.run();
        });
  }

  if (!trace_out.empty() && obs::Profiler::global().enabled()) {
    obs::write_trace_file(trace_out, obs::Profiler::global().trace_snapshot());
    std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
  }
  return rc;
}

// Fleet-scale population scenario: N chips over a multi-decade horizon,
// with per-chip process variation, workload schedules, DRM policies, and
// optional redundancy. Scenario defaults come from the preset and the
// RAMP_FLEET_* environment; flags override both. stdout carries the
// deterministic curve CSV (byte-identical at any --jobs and across reruns
// with one --seed); fleet_curve.csv and fleet.ndjson land in --out-dir.
int cmd_fleet(std::vector<std::string> args) {
  std::string scenario_name = flag_str(args, "--scenario", "");
  // Also accepted positionally: `ramp fleet attack --chips N`.
  if (scenario_name.empty() && !args.empty() &&
      args.front().rfind("--", 0) != 0) {
    scenario_name = args.front();
    args.erase(args.begin());
  }
  fleet::FleetScenario sc =
      fleet::FleetScenario::from_env(scenario_name, /*trace_len=*/200'000);
  sc.chips = flag_u64(args, "--chips", sc.chips);
  sc.seed = flag_u64(args, "--seed", sc.seed);
  sc.horizon_years = flag_double(args, "--years", sc.horizon_years);
  sc.phase_years = flag_double(args, "--phase", sc.phase_years);
  sc.curve_bin_years = flag_double(args, "--bin", sc.curve_bin_years);
  sc.ladder_points = static_cast<int>(
      flag_u64(args, "--ladder", static_cast<std::uint64_t>(sc.ladder_points)));
  if (const std::string node = flag_str(args, "--node", ""); !node.empty()) {
    sc.tech = parse_node(node);
  }
  if (const std::string policy = flag_str(args, "--policy", "");
      !policy.empty()) {
    sc.policy = fleet::parse_policy(policy);
  }
  if (std::string apps = flag_str(args, "--apps", ""); !apps.empty()) {
    sc.apps.clear();
    std::size_t start = 0;
    while (start <= apps.size()) {
      const std::size_t comma = apps.find(',', start);
      const std::size_t end = comma == std::string::npos ? apps.size() : comma;
      if (end > start) sc.apps.push_back(apps.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  sc.cell.trace_instructions =
      flag_u64(args, "--trace-len", sc.cell.trace_instructions);
  flag_sim_mode(args, sc.cell);

  const std::size_t default_jobs =
      env_jobs("RAMP_JOBS", std::max(1u, std::thread::hardware_concurrency()));
  const auto jobs =
      static_cast<std::size_t>(flag_u64(args, "--jobs", default_jobs));
  RAMP_REQUIRE(jobs > 0, "--jobs must be at least 1");
  const auto metrics = flag_metrics(args);
  const std::string out_dir = flag_str(args, "--out-dir", output_dir());
  const std::string ab_policy = flag_str(args, "--ab", "");

  fleet::FleetSimulator::Options opts;
  opts.stage_store = resolve_stage_store(args, sc.cell, out_dir);
  opts.pool = &shared_pool(jobs);
  if (!args.empty()) {
    std::fprintf(stderr, "fleet: unknown argument '%s'\n", args.front().c_str());
    return 2;
  }
  sc.validate();

  const fleet::FleetSimulator sim(sc, opts);
  const fleet::FleetResult result = sim.run();
  const std::string csv = fleet::fleet_curve_csv(result);
  std::fputs(csv.c_str(), stdout);

  namespace fs = std::filesystem;
  obs::write_text_file_atomic((fs::path(out_dir) / "fleet_curve.csv").string(),
                              csv);
  obs::write_text_file_atomic((fs::path(out_dir) / "fleet.ndjson").string(),
                              fleet::fleet_ndjson(result));

  if (!ab_policy.empty()) {
    // Same scenario, same seed, alternate policy: identical chips see both
    // policies, so the per-bin deltas are pure policy signal.
    fleet::FleetScenario alt = sc;
    alt.policy = fleet::parse_policy(ab_policy);
    const fleet::FleetSimulator sim_b(alt, opts);
    const std::string ab = fleet::fleet_ab_csv(result, sim_b.run());
    std::fputs(ab.c_str(), stdout);
    obs::write_text_file_atomic((fs::path(out_dir) / "fleet_ab.csv").string(),
                                ab);
  }

  std::fprintf(stderr,
               "fleet: %llu chips, %llu failed, survival %.4f, artifacts in "
               "%s\n",
               static_cast<unsigned long long>(result.summary.chips),
               static_cast<unsigned long long>(result.summary.failed),
               result.summary.survival_at_horizon, out_dir.c_str());
  dump_metrics(metrics);
  return 0;
}

// Differential validation of the fast sim paths: every workload runs the
// detailed OooCore and the requested estimator(s) over the same synthetic
// stream, then the run-level IPC must agree within the estimator's IPC
// tolerance (relative; --tol-ipc for sampled, --tol-ipc-interval for the
// coarser interval model) and every structure's average activity within
// --tol-act (absolute). Prints a per-(app, estimator) table and exits
// nonzero on any violation — this is the tolerance contract the cached
// fast-path payloads are sold under, wired into ctest so a regression in
// either estimator fails the suite.
int cmd_simcheck(std::vector<std::string> args) {
  // 2M instructions: the sampled estimator's tolerance contract holds from
  // ~1M up (enough sampling units for the regression); shorter streams are
  // what `auto` keeps on the detailed core anyway.
  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/2'000'000);
  cfg.trace_instructions = flag_u64(args, "--trace-len", cfg.trace_instructions);
  const std::string mode = flag_str(args, "--mode", "both");
  const auto node = parse_node(flag_str(args, "--node", "180"));
  const double tol_ipc = flag_double(args, "--tol-ipc", 0.02);
  const double tol_ipc_interval = flag_double(args, "--tol-ipc-interval", 0.05);
  const double tol_act = flag_double(args, "--tol-act", 0.02);
  if (!args.empty()) {
    std::fprintf(stderr, "simcheck: unknown argument '%s'\n",
                 args.front().c_str());
    return 2;
  }
  const bool do_sampled = mode == "both" || mode == "sampled";
  const bool do_interval = mode == "both" || mode == "interval";
  RAMP_REQUIRE(do_sampled || do_interval,
               "--mode expects sampled|interval|both, got '" + mode + "'");
  RAMP_REQUIRE(tol_ipc > 0.0 && tol_ipc_interval > 0.0 && tol_act > 0.0,
               "tolerances must be positive");

  const scaling::TechnologyNode& tech = scaling::node(node);
  const sim::CoreConfig core_cfg = sim::core_config_for(tech);
  const auto interval_cycles = static_cast<std::uint64_t>(
      std::llround(core_cfg.frequency_hz * cfg.interval_seconds));

  TextTable table("simcheck @ " + std::string(scaling::tech_name(node)) +
                  ", " + std::to_string(cfg.trace_instructions) +
                  " instructions");
  table.set_header({"app", "estimator", "IPC det", "IPC est", "dIPC %",
                    "max dAct", "status"});
  int violations = 0;
  for (const auto& w : workloads::spec2k_suite()) {
    const std::uint64_t seed = pipeline::app_trace_seed(cfg.seed, w.name);
    const auto fresh_trace = [&] {
      return trace::SyntheticTrace(w.profile, cfg.trace_instructions, seed);
    };
    trace::SyntheticTrace det_trace = fresh_trace();
    sim::OooCore det_core(core_cfg);
    const sim::SimResult det = det_core.run(det_trace, interval_cycles);

    const auto check = [&](const char* name, double ipc_tol,
                           const sim::SimResult& est) {
      const double det_ipc = det.totals.ipc();
      const double rel_ipc =
          det_ipc > 0.0 ? std::abs(est.totals.ipc() - det_ipc) / det_ipc : 0.0;
      double max_act = 0.0;
      for (std::size_t s = 0; s < sim::kNumStructures; ++s) {
        max_act = std::max(max_act, std::abs(est.totals.avg_activity[s] -
                                             det.totals.avg_activity[s]));
      }
      const bool ok = rel_ipc <= ipc_tol && max_act <= tol_act;
      if (!ok) ++violations;
      table.add_row({w.name, name, fmt(det_ipc, 4), fmt(est.totals.ipc(), 4),
                     fmt(rel_ipc * 100.0, 2), fmt(max_act, 4),
                     ok ? "ok" : "FAIL"});
    };
    if (do_sampled) {
      trace::SyntheticTrace t = fresh_trace();
      sim::SampledCore core(core_cfg, cfg.sampled);
      check("sampled", tol_ipc, core.run(t, interval_cycles));
    }
    if (do_interval) {
      trace::SyntheticTrace t = fresh_trace();
      sim::IntervalModel model(core_cfg);
      check("interval", tol_ipc_interval, model.run(t, interval_cycles));
    }
  }
  std::printf("%s\n", table.str().c_str());
  if (violations > 0) {
    std::fprintf(stderr,
                 "simcheck: %d estimate(s) outside tolerance "
                 "(tol-ipc %.3f/%.3f, tol-act %.3f)\n",
                 violations, tol_ipc, tol_ipc_interval, tol_act);
    return 1;
  }
  std::printf("simcheck: all estimates within tolerance "
              "(tol-ipc %.3f/%.3f, tol-act %.3f)\n",
              tol_ipc, tol_ipc_interval, tol_act);
  return 0;
}

int cmd_trace(std::vector<std::string> args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: ramp trace <app> <file> [instructions]\n");
    return 2;
  }
  const auto& w = workloads::workload(args[0]);
  const std::uint64_t n =
      args.size() > 2 ? parse_u64(args[2], "instruction count") : 1'000'000;
  trace::SyntheticTrace gen(w.profile, n, 42);
  trace::TraceWriter writer(args[1]);
  writer.append_all(gen);
  std::printf("wrote %llu instructions of '%s' to %s\n",
              static_cast<unsigned long long>(writer.written()),
              w.name.c_str(), args[1].c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ramp <command>\n"
               "  list                          workloads and nodes\n"
               "  evaluate <app> <node> [...]   one cell (e.g. ramp evaluate gcc 65-1.0)\n"
               "  sweep [--trace-len N] [--jobs N]    full qualified sweep table\n"
               "  report [--trace-len N] [--jobs N]   markdown report of the sweep\n"
               "  missions [--trace-len N] [--jobs N] deployed-lifetime presets\n"
               "  serve [--jobs N] [--cache-capacity N] [--max-queue N]\n"
               "        [--out-dir DIR] [--no-persist] [--trace-out FILE]\n"
               "        [--listen ADDR:PORT] [--shards N] [--port-file FILE]\n"
               "        [--max-conns N] [--max-queued N] [--request-trace]\n"
               "        [--slow-log[=FILE]] [--slow-ms MS]\n"
               "                                NDJSON eval service; stdin/stdout by\n"
               "                                default, TCP with --listen (port 0 =\n"
               "                                ephemeral, reported via --port-file),\n"
               "                                forked keyspace shards with --shards;\n"
               "                                --request-trace traces every request\n"
               "                                (else only \"trace\":true requests),\n"
               "                                --slow-log appends traced requests\n"
               "                                over --slow-ms ms as NDJSON (default\n"
               "                                <out-dir>/serve_slow.ndjson, 10 ms)\n"
               "  fleet [baseline|attack|monitor] [--chips N]\n"
               "        [--years Y] [--phase Y] [--bin Y] [--seed N]\n"
               "        [--node NAME] [--policy none|dvfs|migration]\n"
               "        [--ladder N] [--apps a,b,c] [--ab POLICY] [--jobs N]\n"
               "                                population scenario: survival and\n"
               "                                failure-rate curves on stdout and\n"
               "                                fleet_curve.csv / fleet.ndjson in\n"
               "                                --out-dir (RAMP_FLEET_* env too)\n"
               "  simcheck [--trace-len N] [--mode sampled|interval|both]\n"
               "        [--node NAME] [--tol-ipc F] [--tol-ipc-interval F]\n"
               "        [--tol-act F]\n"
               "                                differential validation of the\n"
               "                                fast sim paths vs detailed on\n"
               "                                every workload; nonzero exit if\n"
               "                                any estimate misses tolerance\n"
               "                                (rel IPC 0.02 sampled / 0.05\n"
               "                                interval, 0.02 abs activity)\n"
               "  trace <app> <file> [N]        capture a synthetic trace\n"
               "Sweep-based commands and serve also honor --out-dir (default\n"
               "$RAMP_OUT_DIR or out/) for caches and generated artifacts.\n"
               "sweep/report/missions take --metrics[=FILE] to dump process\n"
               "metrics and the per-stage profile on exit (Prometheus text;\n"
               "NDJSON when FILE ends in .json); RAMP_METRICS=off disables\n"
               "collection.\n"
               "Flight recorder: sweep/report/missions take --timeline[=DIR]\n"
               "to record per-interval physics timelines (CSV + NDJSON per\n"
               "cell, plus incidents.ndjson; default DIR <out-dir>/timeline)\n"
               "and, like serve, --trace-out FILE to write a Chrome\n"
               "trace-event JSON for ui.perfetto.dev. Env equivalents:\n"
               "RAMP_TIMELINE[=DIR], RAMP_TRACE_OUT=FILE.\n"
               "Stage cache: evaluate/sweep/report/missions/serve take\n"
               "--stage-cache[=DIR] to memoize per-stage pipeline outputs\n"
               "(trace/sim/power/thermal/fit) content-addressed on disk\n"
               "(default DIR <out-dir>/stage_cache; results are identical,\n"
               "only faster). Env equivalent: RAMP_STAGE_CACHE[=DIR].\n"
               "Sim mode: evaluate/sweep/report/missions/serve/fleet take\n"
               "--sim-mode detailed|sampled|interval|auto to pick the timing\n"
               "estimator (default detailed; sampled/interval trade <=2%% IPC\n"
               "accuracy for speed, see ramp simcheck). Env equivalents:\n"
               "RAMP_SIM_MODE, RAMP_SIM_PERIOD/WARMUP/MEASURE.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "evaluate") return cmd_evaluate(std::move(args));
    if (cmd == "sweep") return cmd_sweep(std::move(args), false);
    if (cmd == "report") return cmd_sweep(std::move(args), true);
    if (cmd == "missions") return cmd_missions(std::move(args));
    if (cmd == "serve") return cmd_serve(std::move(args));
    if (cmd == "fleet") return cmd_fleet(std::move(args));
    if (cmd == "simcheck") return cmd_simcheck(std::move(args));
    if (cmd == "trace") return cmd_trace(std::move(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
