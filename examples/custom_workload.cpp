// Bring your own workload: using the GeneratorProfile API directly.
//
// The 16 SPEC2K profiles are just presets; any workload can be described by
// its statistical fingerprint (instruction mix, dependency distances,
// memory footprints, branch behaviour) and evaluated through the same
// pipeline. This example builds two contrasting custom workloads — a dense
// FP streaming kernel and a pointer-chasing database-like loop — and
// compares their reliability trajectories, then shows the trace
// capture/replay path (trace_io) that lets externally produced traces drive
// the simulator.
#include <cstdio>

#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "sim/ooo_core.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

int main() {
  using namespace ramp;
  using trace::OpClass;

  auto mix_entry = [](trace::GeneratorProfile& p, OpClass c, double w) {
    p.op_mix[static_cast<std::size_t>(c)] = w;
  };

  // --- workload 1: dense FP streaming (BLAS-like) -------------------------
  workloads::Workload streamy;
  streamy.name = "fp-stream";
  streamy.suite = workloads::Suite::kSpecFp;
  {
    trace::GeneratorProfile p;
    p.op_mix.assign(trace::kNumOpClasses, 0.0);
    mix_entry(p, OpClass::kIntAlu, 12);
    mix_entry(p, OpClass::kFpAlu, 42);
    mix_entry(p, OpClass::kFpDiv, 0.3);
    mix_entry(p, OpClass::kLoad, 28);
    mix_entry(p, OpClass::kStore, 12);
    mix_entry(p, OpClass::kBranch, 3);
    mix_entry(p, OpClass::kLogicalCr, 2);
    p.dep_distance_p = 1.0 / (1.0 + 5.0);  // wide ILP
    p.stream_fraction = 0.92;
    p.cold_fraction = 0.01;
    p.hot_footprint_bytes = 12 * 1024;
    p.branch_noise = 0.005;
    p.block_len = 30;
    streamy.profile = p;
  }

  // --- workload 2: pointer-chasing (OLTP-like) ----------------------------
  workloads::Workload chasey;
  chasey.name = "ptr-chase";
  chasey.suite = workloads::Suite::kSpecInt;
  {
    trace::GeneratorProfile p;
    p.op_mix.assign(trace::kNumOpClasses, 0.0);
    mix_entry(p, OpClass::kIntAlu, 40);
    mix_entry(p, OpClass::kLoad, 34);
    mix_entry(p, OpClass::kStore, 8);
    mix_entry(p, OpClass::kBranch, 12);
    mix_entry(p, OpClass::kLogicalCr, 6);
    p.dep_distance_p = 1.0 / (1.0 + 1.6);  // serial chains
    p.stream_fraction = 0.25;
    p.cold_fraction = 0.06;                // frequent L2 misses
    p.hot_footprint_bytes = 48 * 1024;
    p.cold_footprint_bytes = 256ull * 1024 * 1024;
    p.branch_noise = 0.06;
    p.block_len = 5;
    chasey.profile = p;
  }

  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 150'000;
  const pipeline::Evaluator evaluator(cfg);

  TextTable table("Custom workloads across the scaling study");
  table.set_header({"workload", "tech", "IPC", "power W", "hottest K",
                    "total FIT", "vs own 180nm"});
  for (const auto* w : {&streamy, &chasey}) {
    const auto results = evaluator.evaluate_app(*w);
    // Qualify this workload's processor to 4000 FIT at 180 nm, then follow
    // the absolute FIT across the remap (same flow as the main study, with
    // a single-app "suite").
    const core::MechanismConstants k = core::qualify({results.front().raw_fits});
    const double base_fit =
        pipeline::scale_summary(results.front().raw_fits, k).total();
    for (const auto& r : results) {
      const double fit = pipeline::scale_summary(r.raw_fits, k).total();
      table.add_row({w->name, std::string(scaling::tech_name(r.tech)),
                     fmt(r.ipc, 2), fmt(r.avg_total_power_w, 1),
                     fmt(r.max_structure_temp_k, 1), fmt(fit, 0),
                     fmt_pct_change(fit / base_fit)});
    }
  }
  std::printf("%s\n", table.str().c_str());

  // --- capture & replay ---------------------------------------------------
  const std::string path = "/tmp/ramp_custom_workload.trc";
  {
    trace::SyntheticTrace gen(streamy.profile, 50'000, 7);
    trace::TraceWriter writer(path);
    writer.append_all(gen);
    std::printf("captured %llu instructions to %s\n",
                static_cast<unsigned long long>(writer.written()),
                path.c_str());
  }
  {
    trace::TraceFileReader replay(path);
    sim::OooCore core(sim::base_core_config());
    const auto r = core.run(replay, 1100);
    std::printf("replayed from file: IPC %.2f over %llu cycles\n",
                r.totals.ipc(),
                static_cast<unsigned long long>(r.totals.cycles));
  }
  std::remove(path.c_str());
  std::printf(
      "\nThe streaming kernel runs hot (busy FPU/LSU) but predictably; the\n"
      "pointer chaser is cool but lives at memory latency. Their FIT gap is\n"
      "the workload dependence the paper quantifies.\n");
  return 0;
}
