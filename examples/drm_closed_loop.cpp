// Closed-loop dynamic reliability management at 65 nm.
//
// Demonstrates the paper's proposed mitigation (§5.2): instead of
// qualifying for worst-case conditions, qualify for the expected case and
// let a runtime controller handle departures. We drive the DRM controller
// with the instantaneous FIT stream of a real pipeline run at 65 nm
// (1.0 V), alternating hot and cool application phases, and report the
// lifetime the controller delivers versus running uncontrolled.
//
// Usage: drm_closed_loop [hot-app] [cool-app]
#include <cstdio>
#include <string>

#include "core/qualification.hpp"
#include "drm/drm_controller.hpp"
#include "util/constants.hpp"
#include "pipeline/evaluator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  const std::string hot_app = argc > 1 ? argv[1] : "crafty";
  const std::string cool_app = argc > 2 ? argv[2] : "ammp";

  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 120'000;
  const pipeline::Evaluator evaluator(cfg);

  // Qualify at 180 nm against the hot app (expected-case qualification).
  const auto base = evaluator.evaluate(workloads::workload(hot_app),
                                       scaling::TechPoint::k180nm);
  const core::MechanismConstants k = core::qualify({base.raw_fits});

  // Measure both apps at 65 nm (1.0 V).
  auto measure = [&](const std::string& name) {
    return evaluator.evaluate(workloads::workload(name),
                              scaling::TechPoint::k65nm_1V0, base.sink_temp_k);
  };
  const auto hot = measure(hot_app);
  const auto cool = measure(cool_app);
  const double hot_fit = pipeline::scale_summary(hot.raw_fits, k).total();
  const double cool_fit = pipeline::scale_summary(cool.raw_fits, k).total();

  std::printf("65 nm (1.0V) uncontrolled FIT: %s = %.0f, %s = %.0f\n\n",
              hot_app.c_str(), hot_fit, cool_app.c_str(), cool_fit);

  // Per-rung FIT model: scale the hot/cool FIT by each DVFS point's
  // reliability factor, estimated by re-evaluating the dominant TDDB and
  // thermal terms at the rung's voltage (simplified: one factor per rung
  // from a steady-state model evaluation).
  const auto ladder =
      drm::dvfs_ladder(scaling::node(scaling::TechPoint::k65nm_1V0), 4, 0.05);
  std::vector<double> rung_factor;
  for (const auto& p : ladder) {
    scaling::TechnologyNode node = scaling::node(scaling::TechPoint::k65nm_1V0);
    node.vdd = p.vdd;
    const core::RampModel model(node, k);
    // Temperature response to the rung: roughly proportional to V²f.
    const double rel_power = (p.vdd * p.vdd * p.frequency_hz) / (1.0 * 2.0e9);
    const double temp = hot.sink_temp_k +
                        (hot.max_structure_temp_k - hot.sink_temp_k) * rel_power;
    const double fit =
        core::steady_state_summary(model, temp, 0.5, p.vdd).total();
    rung_factor.push_back(fit);
  }
  for (std::size_t i = rung_factor.size(); i-- > 0;) {
    rung_factor[i] /= rung_factor[0];  // normalize to the nominal rung
  }

  // Closed loop: alternate 50 µs hot / 50 µs cool phases for 10 ms.
  drm::DrmConfig dcfg;
  dcfg.fit_budget = 4000.0;  // the 30-year qualification point
  dcfg.headroom = 0.05;
  dcfg.dwell_seconds = 100e-6;
  drm::DrmController ctl(dcfg, ladder);

  const double dt = 1e-6;
  double t = 0.0;
  while (t < 10e-3) {
    const bool hot_phase = static_cast<int>(t / 50e-6) % 2 == 0;
    const double base_fit = hot_phase ? hot_fit : cool_fit;
    const double fit_now =
        base_fit * rung_factor[static_cast<std::size_t>(ctl.current_index())];
    ctl.update(fit_now, dt);
    t += dt;
  }

  TextTable table("Closed-loop DRM vs uncontrolled (10 ms, alternating phases)");
  table.set_header({"policy", "avg FIT", "MTTF (y)", "avg rel. performance",
                    "switches"});
  const double uncontrolled = (hot_fit + cool_fit) / 2.0;
  table.add_row({"uncontrolled (nominal V/f)", fmt(uncontrolled, 0),
                 fmt(mttf_years_from_fit(uncontrolled), 1), "1.00", "0"});
  table.add_row({"DRM @ 4000 FIT budget", fmt(ctl.average_fit(), 0),
                 fmt(mttf_years_from_fit(ctl.average_fit()), 1),
                 fmt(ctl.average_performance(), 3),
                 std::to_string(ctl.switches())});
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "The controller trades a few percent of frequency for a lifetime back\n"
      "near the 30-year qualification point — the paper's expected-case-\n"
      "plus-dynamic-response design style.\n");
  return 0;
}
