// Worst-case vs application-aware reliability qualification (paper §5.2).
//
// Qualifying a processor for worst-case operating conditions means
// designing for a failure rate no real application reaches — and the gap
// widens with scaling. This example quantifies the over-design at each
// node: the FIT budget a worst-case qualifier would provision versus what
// the workloads actually consume, i.e. the argument for the paper's
// dynamic reliability management proposal.
//
// Usage: worstcase_qualification [instructions]
#include <algorithm>
#include <cstdio>
#include <string>

#include "pipeline/sweep.hpp"
#include "util/constants.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/100'000);
  if (argc > 1) cfg.trace_instructions = std::stoull(argv[1]);

  // Full-suite sweep (cached if a bench already ran with this config).
  pipeline::StderrProgress progress;
  const pipeline::SweepResult sweep =
      pipeline::SweepRunner(cfg, {.jobs = 4, .observer = &progress}).run();

  TextTable table(
      "Worst-case qualification overhead per node (16-app SPEC2K suite)");
  table.set_header({"tech", "worst-case FIT", "highest app FIT",
                    "average app FIT", "over highest", "over average",
                    "worst-case MTTF (y)", "avg-app MTTF (y)"});

  for (const auto tp : scaling::kAllTechPoints) {
    const double wc = sweep.worst_case(tp).total();
    double highest = 0.0, sum = 0.0;
    for (const auto& r : sweep.results) {
      if (r.tech != tp) continue;
      const double f = sweep.qualified_fits(r).total();
      highest = std::max(highest, f);
      sum += f;
    }
    const double avg = sum / 16.0;
    table.add_row({std::string(scaling::tech_name(tp)), fmt(wc, 0),
                   fmt(highest, 0), fmt(avg, 0),
                   fmt_pct_change(wc / highest), fmt_pct_change(wc / avg),
                   fmt(mttf_years_from_fit(wc), 1),
                   fmt(mttf_years_from_fit(avg), 1)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Paper reference: the worst-case-over-highest-app gap grows from 25%%\n"
      "at 180 nm to 90%% at 65 nm, and worst-case-over-average from 67%% to\n"
      "206%% — qualifying for the worst case increasingly over-designs the\n"
      "processor for every workload it will actually run.\n");
  return 0;
}
