// The design-remap study — the paper's headline practical implication.
//
// Industry practice leveraged one microarchitecture across several
// technology generations with only minor tweaks ("remaps"). This example
// walks one workload through every node of the study and reports what
// happens to performance, power, temperature, and lifetime, ending with the
// qualified-MTTF trajectory that motivates the paper's conclusion: remaps
// become increasingly hard because reliability, not timing, breaks first.
//
// Usage: remap_study [workload] [instructions]
#include <cstdio>
#include <string>

#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  const std::string app = argc > 1 ? argv[1] : "wupwise";
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = argc > 2 ? std::stoull(argv[2]) : 150'000;

  const pipeline::Evaluator evaluator(cfg);
  const workloads::Workload& w = workloads::workload(app);

  std::printf("Remapping one POWER4-like design across five nodes — %s (%s)\n\n",
              w.name.c_str(), workloads::suite_name(w.suite));

  const auto results = evaluator.evaluate_app(w);
  const core::MechanismConstants k = core::qualify({results.front().raw_fits});

  TextTable table("One design, five technology nodes");
  table.set_header({"tech", "freq GHz", "IPC", "perf (rel)", "power W",
                    "hottest K", "total FIT", "MTTF (y)", "FIT vs 180nm"});

  const double base_perf =
      results.front().ipc * scaling::node(results.front().tech).frequency_hz;
  double base_fit = 0.0;
  for (const auto& r : results) {
    const auto& node = scaling::node(r.tech);
    const core::FitSummary fits = pipeline::scale_summary(r.raw_fits, k);
    if (r.tech == scaling::TechPoint::k180nm) base_fit = fits.total();
    const double perf = r.ipc * node.frequency_hz;
    table.add_row({node.name, fmt(node.frequency_hz / 1e9, 2), fmt(r.ipc, 2),
                   fmt(perf / base_perf, 2), fmt(r.avg_total_power_w, 1),
                   fmt(r.max_structure_temp_k, 1), fmt(fits.total(), 0),
                   fmt(fits.mttf_years(), 1),
                   fmt_pct_change(fits.total() / base_fit)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Each remap buys ~20%% clock (memory latency limits the rest) but the\n"
      "qualified 30-year lifetime erodes generation over generation — the\n"
      "paper's argument that remaps need reliability-aware design, not just\n"
      "timing closure.\n");
  return 0;
}
