// Transient reliability of a phased workload.
//
// Stationary benchmarks hide a question the paper's 1 µs methodology can
// answer: what does the FIT stream look like *during* execution when the
// program alternates kernels? This example composes an integer phase and an
// FP phase into one PhasedTrace, evaluates it through the full pipeline
// with interval recording on, dumps the transient time-series to CSV, and
// compares the phased run's time-averaged FIT against the two stationary
// phases — demonstrating both the evaluate_stream() API (any TraceReader,
// including file replays) and the recorded IntervalSample trace.
//
// Usage: transient_study [instructions]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "trace/phased_trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;
  using trace::OpClass;

  const std::uint64_t n = argc > 1 ? std::stoull(argv[1]) : 200'000;

  // Two phases chosen to contrast *activity*: a serial pointer-chasing
  // phase (low issue rates, cool) against a wide FP-streaming phase (high
  // issue rates, hot). Temperature cannot follow 25 µs phases (the silicon
  // time constant is ~10 ms), so the instantaneous FIT swing is carried by
  // the activity factors — exactly the J = p·J_max dependence of eq. 1.
  trace::GeneratorProfile idle_phase;
  idle_phase.op_mix = {45, 1, 0.3, 0, 0, 35, 8, 7, 4};
  idle_phase.dep_distance_p = 1.0 / (1.0 + 1.0);  // serial chains
  idle_phase.cold_fraction = 0.05;                // memory-bound
  idle_phase.block_len = 5;
  trace::GeneratorProfile busy_phase;
  busy_phase.op_mix = {12, 1, 0, 45, 0.3, 26, 9, 3, 3};
  busy_phase.dep_distance_p = 1.0 / (1.0 + 8.0);  // wide ILP
  busy_phase.stream_fraction = 0.9;
  busy_phase.branch_noise = 0.005;
  busy_phase.block_len = 24;
  const trace::GeneratorProfile& int_phase = idle_phase;
  const trace::GeneratorProfile& fp_phase = busy_phase;

  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = n;
  cfg.record_intervals = true;
  const pipeline::Evaluator evaluator(cfg);

  auto eval_profile = [&](const trace::GeneratorProfile& p,
                          const std::string& label) {
    trace::SyntheticTrace t(p, n, 17);
    return evaluator.evaluate_stream(t, label, 1.0,
                                     scaling::TechPoint::k65nm_1V0);
  };
  const auto int_only = eval_profile(int_phase, "serial-phase");
  const auto fp_only = eval_profile(fp_phase, "streaming-phase");

  trace::PhasedTrace phased({int_phase, fp_phase}, n, 20'000, 17);
  const auto mixed = evaluator.evaluate_stream(
      phased, "phased", 1.0, scaling::TechPoint::k65nm_1V0);

  // Qualify against the serial phase so mechanism magnitudes are
  // comparable (4000 FIT total for the serial-phase run).
  const core::MechanismConstants k = core::qualify({int_only.raw_fits});
  auto qualified = [&](const pipeline::AppTechResult& r) {
    return pipeline::scale_summary(r.raw_fits, k).total();
  };

  TextTable table("Phased vs stationary execution at 65 nm (1.0V)");
  table.set_header({"run", "IPC", "power W", "hottest K", "FIT"});
  for (const auto* r : {&int_only, &fp_only, &mixed}) {
    table.add_row({r->app, fmt(r->ipc, 2), fmt(r->avg_total_power_w, 1),
                   fmt(r->max_structure_temp_k, 1), fmt(qualified(*r), 0)});
  }
  std::printf("%s\n", table.str().c_str());

  // Transient CSV for plotting.
  const std::string csv_path = "transient_study.csv";
  {
    std::ofstream csv(csv_path);
    csv << "time_us,hottest_K,power_W,ipc,fit\n";
    for (const auto& s : mixed.interval_trace) {
      csv << s.time_s * 1e6 << ',' << s.hottest_temp_k << ','
          << s.total_power_w << ',' << s.ipc << ',' << s.qualified_total(k)
          << '\n';
    }
  }
  std::printf("transient trace (%zu samples) written to %s\n",
              mixed.interval_trace.size(), csv_path.c_str());

  // Quantify the swing the phases induce.
  double min_fit = 1e300, max_fit = 0;
  for (const auto& s : mixed.interval_trace) {
    const double f = s.qualified_total(k);
    min_fit = std::min(min_fit, f);
    max_fit = std::max(max_fit, f);
  }
  std::printf(
      "instantaneous FIT swings %.2fx across phases (activity-driven: the\n"
      "~10 ms thermal time constant smooths temperature across 25 us\n"
      "phases); the run's average sits between the stationary extremes —\n"
      "the time-averaging at the heart of the paper's Section 2.\n",
      max_fit / min_fit);
  return 0;
}
