// DVFS and lifetime reliability.
//
// RAMP's TDDB model keeps its voltage dependence precisely so techniques
// like dynamic voltage scaling can be evaluated (paper §2, footnote 1).
// This example sweeps supply voltage (with proportional frequency) on the
// 65 nm node for one workload and reports how each mechanism's FIT responds
// — voltage helps TDDB directly and every mechanism indirectly through
// lower power and temperature.
//
// Usage: dvfs_reliability [workload]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/fit_tracker.hpp"
#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "power/power_model.hpp"
#include "thermal/rc_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  const std::string app = argc > 1 ? argv[1] : "crafty";
  const workloads::Workload& w = workloads::workload(app);

  // Baseline: full pipeline at 65 nm (1.0 V) to get activity factors and
  // the qualification constants from a 180 nm run.
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = 150'000;
  const pipeline::Evaluator evaluator(cfg);
  const auto base180 = evaluator.evaluate(w, scaling::TechPoint::k180nm);
  const core::MechanismConstants k = core::qualify({base180.raw_fits});

  std::printf("DVFS study: %s on the 65 nm node (qualified against 180 nm)\n\n",
              w.name.c_str());

  TextTable table("Voltage/frequency scaling at 65 nm");
  table.set_header({"Vdd (V)", "freq (GHz)", "power (W)", "hottest (K)", "EM",
                    "SM", "TDDB", "TC", "total FIT", "MTTF (y)"});

  for (double vdd : {1.1, 1.05, 1.0, 0.95, 0.9, 0.85}) {
    // Derive a DVFS operating point from the 65 nm node: frequency tracks
    // voltage linearly (the classic alpha-power approximation near Vdd).
    scaling::TechnologyNode node = scaling::node(scaling::TechPoint::k65nm_1V0);
    node.vdd = vdd;
    node.frequency_hz = 2.0e9 * (vdd / 1.0);
    node.name = "65nm DVFS";

    // Re-run the thermal/reliability stages with this operating point,
    // reusing the timing behaviour measured at the nominal point (DVFS
    // changes the clock, not the microarchitecture).
    const power::PowerModel pm(cfg.power, node);
    const thermal::Floorplan fp =
        thermal::power4_floorplan().scaled(std::sqrt(node.relative_area));
    thermal::RcNetwork net(fp, cfg.thermal);

    const auto r65 = evaluator.evaluate(w, scaling::TechPoint::k65nm_1V0,
                                        base180.sink_temp_k);
    auto activity = r65.run.avg_activity;
    power::StructurePower dyn = pm.dynamic_power(activity);
    for (double& v : dyn) v *= w.power_bias;

    auto power_of = [&](const std::vector<double>& temps) {
      std::vector<double> p(fp.size(), 0.0);
      for (int s = 0; s < sim::kNumStructures; ++s) {
        const auto si = static_cast<std::size_t>(s);
        const auto blk = fp.index_of(
            std::string(sim::structure_name(static_cast<sim::StructureId>(s))));
        p[blk] += dyn[si] + pm.leakage_power(static_cast<sim::StructureId>(s),
                                             temps[blk]);
      }
      return p;
    };
    const auto temps = net.steady_state(power_of);

    double total_power = 0;
    std::vector<double> block_temps(temps.begin(),
                                    temps.begin() + static_cast<std::ptrdiff_t>(fp.size()));
    for (double v : power_of(block_temps)) total_power += v;
    double hottest = 0;
    for (std::size_t i = 0; i < fp.size(); ++i) {
      hottest = std::max(hottest, temps[i]);
    }

    // Steady-state FIT at the average structure temperature/activity.
    const core::RampModel model(node, k);
    double avg_act = 0;
    for (double a : activity) avg_act += a;
    avg_act /= sim::kNumStructures;
    const core::FitSummary fits =
        core::steady_state_summary(model, hottest, avg_act, vdd);
    const auto mech = fits.by_mechanism();

    table.add_row({fmt(vdd, 2), fmt(node.frequency_hz / 1e9, 2),
                   fmt(total_power, 1), fmt(hottest, 1), fmt(mech[0], 0),
                   fmt(mech[1], 0), fmt(mech[2], 0), fmt(mech[3], 0),
                   fmt(fits.total(), 0), fmt(fits.mttf_years(), 1)});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Lower voltage wins twice: directly through TDDB's V^(a-bT) term and\n"
      "indirectly through power -> temperature for every mechanism.\n");
  return 0;
}
