// Deployment mission profiles: from benchmark FIT to deployed lifetime.
//
// The sweep gives per-workload failure rates under continuous execution;
// a deployed processor runs a daily mix with idle time and power cycles.
// This example evaluates three machine archetypes (server / desktop /
// laptop) across the technology nodes, showing how duty cycling and
// power-cycle frequency reshape which mechanism dominates: wear-out
// mechanisms scale with powered hours, thermal cycling with on/off events.
//
// Usage: mission_profiles [instructions]
#include <cstdio>
#include <string>

#include "pipeline/mission.hpp"
#include "pipeline/sweep.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  pipeline::EvaluationConfig cfg =
      pipeline::EvaluationConfig::from_env(/*trace_len=*/100'000);
  if (argc > 1) cfg.trace_instructions = std::stoull(argv[1]);
  pipeline::StderrProgress progress;
  const pipeline::SweepResult sweep =
      pipeline::SweepRunner(cfg, {.jobs = 4, .observer = &progress}).run();

  for (const auto& mission : pipeline::example_missions()) {
    TextTable table("Mission: " + mission.name + "  (" +
                    fmt(mission.active_hours(), 1) + " h/day active, " +
                    fmt(mission.power_cycles_per_day, 2) + " power cycles/day)");
    table.set_header({"tech", "EM", "SM", "TDDB", "TC", "total FIT",
                      "MTTF (y)"});
    for (const auto tp : scaling::kAllTechPoints) {
      const auto fit = pipeline::evaluate_mission(sweep, tp, mission);
      table.add_row({std::string(scaling::tech_name(tp)), fmt(fit.em, 0),
                     fmt(fit.sm, 0), fmt(fit.tddb, 0), fmt(fit.tc, 0),
                     fmt(fit.total(), 0), fmt(fit.mttf_years(), 1)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf(
      "Reading: the 24/7 server ages through EM/TDDB (wear-out tracks\n"
      "powered hours); the laptop's aggressive sleep schedule makes thermal\n"
      "cycling its leading mechanism despite far less runtime. Scaling\n"
      "shortens every mission's lifetime, but which mechanism to harden\n"
      "against depends on deployment — workload awareness all the way up.\n");
  return 0;
}
