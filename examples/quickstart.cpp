// Quickstart: evaluate the lifetime reliability of one workload on one
// technology node, end to end.
//
// Demonstrates the library's three-line happy path — build an Evaluator,
// evaluate a workload, read the FIT summary — plus how to apply the
// qualification constants that turn raw model output into absolute FIT.
//
// Usage: quickstart [workload] [instructions]
//   workload      one of the 16 SPEC2K names (default: gcc)
//   instructions  synthetic trace length (default: 200000)
#include <cstdio>
#include <string>

#include "core/qualification.hpp"
#include "pipeline/evaluator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ramp;

  const std::string app = argc > 1 ? argv[1] : "gcc";
  pipeline::EvaluationConfig cfg;
  cfg.trace_instructions = argc > 2 ? std::stoull(argv[2]) : 200'000;

  const pipeline::Evaluator evaluator(cfg);
  const workloads::Workload& w = workloads::workload(app);

  // Evaluate at the 180 nm base point and at 65 nm (1.0 V).
  std::printf("evaluating %s (%s) over %llu instructions...\n", w.name.c_str(),
              workloads::suite_name(w.suite),
              static_cast<unsigned long long>(cfg.trace_instructions));
  const pipeline::AppTechResult base =
      evaluator.evaluate(w, scaling::TechPoint::k180nm);
  const pipeline::AppTechResult scaled = evaluator.evaluate(
      w, scaling::TechPoint::k65nm_1V0, /*sink_target_k=*/base.sink_temp_k);

  // Qualify against this single app at 180 nm: each mechanism calibrated to
  // 1000 FIT (the paper qualifies against the 16-app suite average; see
  // bench_fig3_total_fit for that flow).
  const core::MechanismConstants k = core::qualify({base.raw_fits});

  TextTable table("Reliability of '" + w.name + "' under scaling");
  table.set_header({"metric", "180nm", "65nm (1.0V)"});
  auto row = [&](const std::string& name, double a, double b, int digits) {
    table.add_row({name, fmt(a, digits), fmt(b, digits)});
  };
  row("IPC", base.ipc, scaled.ipc, 2);
  row("total power (W)", base.avg_total_power_w, scaled.avg_total_power_w, 1);
  row("hottest structure (K)", base.max_structure_temp_k,
      scaled.max_structure_temp_k, 1);
  row("heat-sink temp (K)", base.sink_temp_k, scaled.sink_temp_k, 1);

  const core::FitSummary fits_base = pipeline::scale_summary(base.raw_fits, k);
  const core::FitSummary fits_scaled = pipeline::scale_summary(scaled.raw_fits, k);
  const auto mech_base = fits_base.by_mechanism();
  const auto mech_scaled = fits_scaled.by_mechanism();
  for (int m = 0; m < core::kNumMechanisms; ++m) {
    row(std::string(core::mechanism_name(static_cast<core::Mechanism>(m))) +
            " FIT",
        mech_base[static_cast<std::size_t>(m)],
        mech_scaled[static_cast<std::size_t>(m)], 0);
  }
  row("total FIT", fits_base.total(), fits_scaled.total(), 0);
  row("MTTF (years)", fits_base.mttf_years(), fits_scaled.mttf_years(), 1);
  std::printf("%s", table.str().c_str());
  std::printf("failure-rate increase 180nm -> 65nm (1.0V): %s\n",
              fmt_pct_change(fits_scaled.total() / fits_base.total()).c_str());
  return 0;
}
